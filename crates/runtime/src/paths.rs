//! Real UDP sockets and the virtual-tuple route table.
//!
//! Each MPTCP path is one non-blocking [`UdpSocket`] — one real four-tuple
//! per subflow, mirroring how a deployed MPTCP uses distinct interface
//! addresses. The route table maps each *outgoing* virtual four-tuple (the
//! identity the state machines stamp on segments they emit) to the path
//! index and real peer address that reach the other end.
//!
//! Routes are learned from ingress: every datagram that decodes cleanly on
//! path `k` from real address `A` carrying virtual tuple `T` proves that
//! replies for `T.reversed()` belong on `(k, A)`. The client seeds routes
//! when it opens subflows (it chooses the virtual tuples); the server
//! learns everything, so it needs no prior knowledge of client addresses
//! and transparently follows a peer whose real address changes.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};

use mptcp_packet::{BufPool, FourTuple, TcpSegment};
use mptcp_telemetry::CounterId;

use crate::stats::RuntimeStats;
use crate::wire;

/// Where segments for one outgoing virtual tuple go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Index into the path set.
    pub path: usize,
    /// Real UDP address of the peer on that path.
    pub peer: SocketAddr,
}

struct PathSock {
    sock: UdpSocket,
    /// Fault-injection hook: a blocked path silently drops egress and
    /// ignores (but still drains) ingress, emulating a blackholed link
    /// without touching kernel state.
    blocked: bool,
}

/// Outcome of one datagram send attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Handed to the kernel.
    Sent,
    /// Dropped because the path is administratively blocked.
    Dropped,
    /// Kernel send buffer full; retry later.
    Busy,
}

/// The set of real sockets plus the virtual-tuple route table.
pub struct PathSet {
    paths: Vec<PathSock>,
    routes: HashMap<FourTuple, Route>,
    buf: Vec<u8>,
    /// Recycled datagram buffers, shared with the egress side via
    /// [`PathSet::pool`]. Once warm, neither direction allocates
    /// per segment.
    pool: BufPool,
}

impl PathSet {
    /// Bind one non-blocking UDP socket per address.
    pub fn bind(addrs: &[SocketAddr]) -> io::Result<PathSet> {
        let mut paths = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let sock = UdpSocket::bind(addr)?;
            sock.set_nonblocking(true)?;
            paths.push(PathSock {
                sock,
                blocked: false,
            });
        }
        Ok(PathSet {
            paths,
            routes: HashMap::new(),
            buf: vec![0u8; 65536],
            pool: BufPool::new(2048, 64),
        })
    }

    /// A handle to the datagram buffer pool (cheap clone; shares storage
    /// and statistics with this path set).
    pub fn pool(&self) -> BufPool {
        self.pool.clone()
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the set has no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Real local address of path `i` (useful after binding port 0).
    pub fn local_addr(&self, i: usize) -> io::Result<SocketAddr> {
        self.paths[i].sock.local_addr()
    }

    /// Administratively block or unblock a path (fault injection).
    pub fn set_blocked(&mut self, i: usize, blocked: bool) {
        self.paths[i].blocked = blocked;
    }

    /// Whether path `i` is administratively blocked.
    pub fn is_blocked(&self, i: usize) -> bool {
        self.paths[i].blocked
    }

    /// Number of learned routes that egress via path `i`.
    pub fn routes_on(&self, i: usize) -> usize {
        self.routes.values().filter(|r| r.path == i).count()
    }

    /// Install or update a route for an outgoing virtual tuple.
    pub fn learn(&mut self, out_tuple: FourTuple, path: usize, peer: SocketAddr) {
        self.routes.insert(out_tuple, Route { path, peer });
    }

    /// Route for an outgoing virtual tuple, if known.
    pub fn route(&self, out_tuple: FourTuple) -> Option<Route> {
        self.routes.get(&out_tuple).copied()
    }

    /// Drain up to `max` datagrams from path `i` into `out`.
    ///
    /// Each datagram is verified ([`wire::decode_datagram`]) before it is
    /// surfaced; failures bump `RtDecodeErrors` and vanish. Every clean
    /// segment also refreshes the reverse route. Blocked paths still drain
    /// the kernel buffer (so queues do not rot) but discard everything.
    pub fn drain(
        &mut self,
        i: usize,
        max: usize,
        stats: &mut RuntimeStats,
        out: &mut Vec<TcpSegment>,
    ) -> usize {
        let mut received = 0;
        for _ in 0..max {
            let (len, from) = match self.paths[i].sock.recv_from(&mut self.buf) {
                Ok(r) => r,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            if self.paths[i].blocked {
                continue;
            }
            // Copy the datagram once into a pooled buffer and decode with
            // the payload *viewed* out of it: the pooled storage stays
            // pinned until the last payload view drops, then recycles.
            let mut pb = self.pool.checkout();
            pb.extend_from_slice(&self.buf[..len]);
            let datagram = pb.freeze();
            match wire::decode_datagram_view(&datagram) {
                Ok(seg) => {
                    self.routes.insert(
                        seg.tuple.reversed(),
                        Route {
                            path: i,
                            peer: from,
                        },
                    );
                    received += 1;
                    stats.rec.count(CounterId::RtDatagramsRx);
                    out.push(seg);
                }
                Err(_) => stats.rec.count(CounterId::RtDecodeErrors),
            }
        }
        received
    }

    /// Attempt to send one already-framed datagram on path `i`.
    pub fn send(&mut self, i: usize, peer: SocketAddr, datagram: &[u8]) -> SendOutcome {
        if self.paths[i].blocked {
            return SendOutcome::Dropped;
        }
        match self.paths[i].sock.send_to(datagram, peer) {
            Ok(_) => SendOutcome::Sent,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => SendOutcome::Busy,
            // Transient errors (e.g. ECONNREFUSED surfaced from ICMP on
            // some platforms) are treated like loss: the retransmit
            // machinery recovers or the failure detector takes the path.
            Err(_) => SendOutcome::Dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mptcp_packet::{Endpoint, SeqNum, TcpFlags};

    fn seg(tuple: FourTuple) -> TcpSegment {
        let mut s = TcpSegment::new(tuple, SeqNum(1), SeqNum(0), TcpFlags::ACK);
        s.payload = Bytes::from_static(b"x");
        s
    }

    fn any_loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn routes_learned_from_ingress() {
        let mut a = PathSet::bind(&[any_loopback()]).unwrap();
        let mut b = PathSet::bind(&[any_loopback()]).unwrap();
        let tuple = FourTuple {
            src: Endpoint::new(0x0a000102, 7),
            dst: Endpoint::new(0x0a000101, 8),
        };
        let dgram = wire::encode_datagram(&seg(tuple));
        let b_addr = b.local_addr(0).unwrap();
        assert_eq!(a.send(0, b_addr, &dgram), SendOutcome::Sent);

        let mut stats = RuntimeStats::new();
        let mut got = Vec::new();
        // Non-blocking loopback delivery is fast but not instant.
        for _ in 0..200 {
            if b.drain(0, 16, &mut stats, &mut got) > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got.len(), 1);
        let route = b.route(tuple.reversed()).expect("reverse route learned");
        assert_eq!(route.path, 0);
        assert_eq!(route.peer, a.local_addr(0).unwrap());
    }

    #[test]
    fn blocked_path_drops_both_directions() {
        let mut a = PathSet::bind(&[any_loopback()]).unwrap();
        let mut b = PathSet::bind(&[any_loopback()]).unwrap();
        let tuple = FourTuple {
            src: Endpoint::new(1, 1),
            dst: Endpoint::new(2, 2),
        };
        let dgram = wire::encode_datagram(&seg(tuple));
        let b_addr = b.local_addr(0).unwrap();

        a.set_blocked(0, true);
        assert_eq!(a.send(0, b_addr, &dgram), SendOutcome::Dropped);

        a.set_blocked(0, false);
        assert_eq!(a.send(0, b_addr, &dgram), SendOutcome::Sent);
        b.set_blocked(0, true);
        let mut stats = RuntimeStats::new();
        let mut got = Vec::new();
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.drain(0, 16, &mut stats, &mut got);
        assert!(got.is_empty(), "blocked ingress is discarded");
    }

    #[test]
    fn corrupt_datagrams_counted_not_surfaced() {
        let mut a = PathSet::bind(&[any_loopback()]).unwrap();
        let mut b = PathSet::bind(&[any_loopback()]).unwrap();
        let tuple = FourTuple {
            src: Endpoint::new(1, 1),
            dst: Endpoint::new(2, 2),
        };
        let mut dgram = wire::encode_datagram(&seg(tuple));
        let last = dgram.len() - 1;
        dgram[last] ^= 0xff;
        a.send(0, b.local_addr(0).unwrap(), &dgram);
        let mut stats = RuntimeStats::new();
        let mut got = Vec::new();
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.drain(0, 16, &mut stats, &mut got);
        assert!(got.is_empty());
        assert_eq!(
            stats.rec.counter(CounterId::RtDecodeErrors),
            1,
            "corruption is visible in telemetry"
        );
    }
}
