//! Mapping wall-clock time onto the simulation clock.
//!
//! The core MPTCP state machines ([`mptcp::MptcpConnection`],
//! `mptcp::MptcpListener`) are written against [`SimTime`], an absolute
//! nanosecond instant. In the simulator that clock is advanced by the event
//! queue; here it is driven by [`std::time::Instant`] so the same unmodified
//! state machines run against real elapsed time.

use std::time::Instant;

use mptcp_netsim::SimTime;

/// The instant the runtime's epoch maps to.
///
/// `SimTime::ZERO` is load-bearing inside the core: `poll_at` returns
/// `Some(SimTime::ZERO)` as the "poll me immediately" sentinel, and several
/// `Option<SimTime>` fields treat zero as "never armed". Anchoring the
/// wall-clock epoch one millisecond *after* zero keeps every real timestamp
/// strictly positive, so a genuine deadline can never be confused with the
/// sentinel.
pub const EPOCH_OFFSET: SimTime = SimTime::from_millis(1);

/// A monotonic source of [`SimTime`].
///
/// Abstracting the clock keeps the event loop testable: unit tests drive it
/// with a [`ManualClock`] and assert on exact timer behaviour, while the
/// real binaries use [`WallClock`].
pub trait Clock {
    /// Current instant. Must be monotonically non-decreasing.
    fn now(&self) -> SimTime;
}

/// Wall-clock time: `EPOCH_OFFSET` plus nanoseconds elapsed since the
/// clock was created.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Anchor the epoch at the moment of creation.
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let elapsed = self.start.elapsed();
        SimTime(EPOCH_OFFSET.0.saturating_add(elapsed.as_nanos() as u64))
    }
}

/// A hand-advanced clock for tests.
pub struct ManualClock {
    now: std::cell::Cell<u64>,
}

impl ManualClock {
    /// Start at `EPOCH_OFFSET`.
    pub fn new() -> ManualClock {
        ManualClock {
            now: std::cell::Cell::new(EPOCH_OFFSET.0),
        }
    }

    /// Advance the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now.set(self.now.get() + ns);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime(self.now.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_and_past_epoch() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a >= EPOCH_OFFSET);
        assert!(b >= a);
        assert!(
            a > SimTime::ZERO,
            "real timestamps never equal the sentinel"
        );
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        let a = c.now();
        c.advance_ns(1_000);
        assert_eq!(c.now().0, a.0 + 1_000);
    }
}
