//! Deadline tracking for many connections.
//!
//! The server multiplexes many connections; scanning every one of them for
//! `poll_at` each loop iteration would make the idle loop O(connections).
//! Instead each connection's current deadline lives in a lazy min-heap:
//! re-scheduling pushes a new entry without removing the old, and stale
//! entries (whose deadline no longer matches the connection's current one)
//! are discarded as they surface. The heap therefore holds at most a few
//! entries per connection and `next()`/`pop_due` stay O(log n).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mptcp_netsim::SimTime;

/// Lazy min-heap of per-connection deadlines.
pub struct DeadlineHeap {
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// The authoritative current deadline per connection; heap entries
    /// that disagree are stale.
    current: Vec<Option<SimTime>>,
}

impl DeadlineHeap {
    pub fn new() -> DeadlineHeap {
        DeadlineHeap {
            heap: BinaryHeap::new(),
            current: Vec::new(),
        }
    }

    fn slot(&mut self, conn: usize) -> &mut Option<SimTime> {
        if conn >= self.current.len() {
            self.current.resize(conn + 1, None);
        }
        &mut self.current[conn]
    }

    /// Record `conn`'s deadline (or clear it with `None`).
    pub fn schedule(&mut self, conn: usize, deadline: Option<SimTime>) {
        *self.slot(conn) = deadline;
        if let Some(d) = deadline {
            self.heap.push(Reverse((d, conn)));
        }
    }

    /// Earliest live deadline, if any.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((d, conn))) = self.heap.peek() {
            if self.current.get(conn).copied().flatten() == Some(d) {
                return Some(d);
            }
            self.heap.pop();
        }
        None
    }

    /// Pop every connection whose deadline is `<= now`, clearing its
    /// deadline (the caller re-schedules after re-polling it).
    pub fn pop_due(&mut self, now: SimTime, due: &mut Vec<usize>) {
        while let Some(&Reverse((d, conn))) = self.heap.peek() {
            let live = self.current.get(conn).copied().flatten() == Some(d);
            if live && d > now {
                break;
            }
            self.heap.pop();
            if live {
                self.current[conn] = None;
                due.push(conn);
            }
        }
    }
}

impl Default for DeadlineHeap {
    fn default() -> Self {
        DeadlineHeap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_entries_are_skipped() {
        let mut h = DeadlineHeap::new();
        h.schedule(0, Some(SimTime(100)));
        h.schedule(1, Some(SimTime(50)));
        // Conn 1 re-schedules later; the 50ns entry is now stale.
        h.schedule(1, Some(SimTime(200)));
        assert_eq!(h.next_deadline(), Some(SimTime(100)));

        let mut due = Vec::new();
        h.pop_due(SimTime(150), &mut due);
        assert_eq!(due, vec![0]);
        assert_eq!(h.next_deadline(), Some(SimTime(200)));
    }

    #[test]
    fn cleared_deadlines_never_fire() {
        let mut h = DeadlineHeap::new();
        h.schedule(3, Some(SimTime(10)));
        h.schedule(3, None);
        let mut due = Vec::new();
        h.pop_due(SimTime(1_000), &mut due);
        assert!(due.is_empty());
        assert_eq!(h.next_deadline(), None);
    }

    #[test]
    fn due_connections_pop_once() {
        let mut h = DeadlineHeap::new();
        h.schedule(0, Some(SimTime(10)));
        h.schedule(1, Some(SimTime(20)));
        let mut due = Vec::new();
        h.pop_due(SimTime(25), &mut due);
        due.sort_unstable();
        assert_eq!(due, vec![0, 1]);
        let mut again = Vec::new();
        h.pop_due(SimTime(25), &mut again);
        assert!(again.is_empty());
    }
}
