//! Loop-phase profiler: where does one `step()` spend its time?
//!
//! Before the server loop can be sharded (ROADMAP item 1) we need to know
//! whether iterations are dominated by recv syscalls, demux, protocol
//! work, encoding, or kernel flush. Each phase of an iteration is timed
//! with `Instant` laps into one [`LogHistogram`] per phase, reported as
//! p50/p99/max.
//!
//! Cost model: when disabled (the default) the profiler is a `None` — no
//! histogram allocation, no `Instant::now()` calls, nothing in the hot
//! loop but a branch on an `Option`. When enabled, each iteration costs
//! one clock read per phase boundary (~20-25 ns each on x86) plus one
//! bucket increment per phase: well under a microsecond per iteration
//! against loop iterations that run tens of microseconds when busy.

use std::time::Instant;

use mptcp_telemetry::LogHistogram;

/// The phases of one event-loop iteration, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Draining datagrams out of every path's kernel buffer.
    RecvDrain,
    /// Routing decoded segments to connections (listener demux + timer pop).
    Demux,
    /// Application `drive()` calls on dirty connections.
    Drive,
    /// Polling connection output and encoding frames into egress queues.
    PollEncode,
    /// Pushing queued frames to the kernel.
    Flush,
    /// Sleeping in `idle_wait` between iterations.
    Idle,
}

/// Number of [`Phase`] variants.
pub const NUM_PHASES: usize = 6;

impl Phase {
    /// Every variant, in execution order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::RecvDrain,
        Phase::Demux,
        Phase::Drive,
        Phase::PollEncode,
        Phase::Flush,
        Phase::Idle,
    ];

    /// Stable snake_case name used in JSON, exposition, and tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::RecvDrain => "recv_drain",
            Phase::Demux => "demux",
            Phase::Drive => "drive",
            Phase::PollEncode => "poll_encode",
            Phase::Flush => "flush",
            Phase::Idle => "idle",
        }
    }
}

/// Accumulate the time since `*t` into `acc` and restart the lap. A `None`
/// lap (profiling disabled) is a no-op, so the hot loop never reads the
/// clock when the profiler is off. Used for phases that interleave per
/// connection and are recorded once per iteration.
pub fn lap_into(t: &mut Option<Instant>, acc: &mut u64) {
    if let Some(prev) = *t {
        let now = Instant::now();
        *acc += now.duration_since(prev).as_nanos() as u64;
        *t = Some(now);
    }
}

/// Per-phase log-bucketed timing histograms, `None` (and cost-free)
/// unless enabled.
pub struct LoopProfiler {
    hists: Option<Box<[LogHistogram; NUM_PHASES]>>,
}

impl LoopProfiler {
    /// A profiler; pass `false` for the zero-allocation disabled stub.
    pub fn new(enabled: bool) -> LoopProfiler {
        LoopProfiler {
            hists: enabled.then(|| Box::new(std::array::from_fn(|_| LogHistogram::new()))),
        }
    }

    /// Whether timing is being collected.
    pub fn enabled(&self) -> bool {
        self.hists.is_some()
    }

    /// Start an iteration lap. `None` when disabled, so no clock is read.
    pub fn start(&self) -> Option<Instant> {
        if self.hists.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close the lap started at `prev` as `phase` time and open the next
    /// lap. Threading the `Option` keeps disabled runs clock-free.
    pub fn lap(&mut self, prev: Option<Instant>, phase: Phase) -> Option<Instant> {
        let prev = prev?;
        let now = Instant::now();
        self.record(phase, now.duration_since(prev).as_nanos() as u64);
        Some(now)
    }

    /// Record `ns` of `phase` time directly (used for accumulated
    /// per-connection sections and idle sleeps).
    pub fn record(&mut self, phase: Phase, ns: u64) {
        if let Some(h) = self.hists.as_mut() {
            h[phase as usize].record(ns);
        }
    }

    /// The histogram for `phase`, when enabled.
    pub fn hist(&self, phase: Phase) -> Option<&LogHistogram> {
        self.hists.as_deref().map(|h| &h[phase as usize])
    }

    /// JSON object mapping each phase to its summary, or `null` when
    /// disabled. Shape: `{"recv_drain":{"count":..,"p50_ns":..,
    /// "p99_ns":..,"max_ns":..,"sum_ns":..},...}`.
    pub fn json_object(&self) -> String {
        let Some(h) = self.hists.as_deref() else {
            return "null".to_string();
        };
        let mut out = String::from("{");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = &h[*phase as usize];
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"sum_ns\":{}}}",
                phase.name(),
                hist.samples(),
                hist.quantile(0.50),
                hist.quantile(0.99),
                hist.max(),
                hist.sum()
            ));
        }
        out.push('}');
        out
    }

    /// Aligned text table of per-phase timings for the admin `profile`
    /// command and `repro top`.
    pub fn render_table(&self) -> String {
        let Some(h) = self.hists.as_deref() else {
            return "profiling disabled (run with profiling enabled to collect phase timings)\n"
                .to_string();
        };
        let mut out = format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>14}\n",
            "phase", "count", "p50_ns", "p99_ns", "max_ns", "total_ms"
        );
        for phase in Phase::ALL {
            let hist = &h[phase as usize];
            out.push_str(&format!(
                "{:<12} {:>12} {:>12} {:>12} {:>12} {:>14.3}\n",
                phase.name(),
                hist.samples(),
                hist.quantile(0.50),
                hist.quantile(0.99),
                hist.max(),
                hist.sum() as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = LoopProfiler::new(false);
        assert!(!p.enabled());
        assert!(p.start().is_none());
        assert!(p.lap(None, Phase::Demux).is_none());
        p.record(Phase::Drive, 100); // no-op, must not panic
        assert!(p.hist(Phase::Drive).is_none());
        assert_eq!(p.json_object(), "null");
        assert!(p.render_table().contains("disabled"));
    }

    #[test]
    fn enabled_profiler_records_laps() {
        let mut p = LoopProfiler::new(true);
        let t = p.start();
        assert!(t.is_some());
        let t = p.lap(t, Phase::RecvDrain);
        assert!(t.is_some());
        p.record(Phase::Flush, 5_000);
        p.record(Phase::Flush, 7_000);
        assert_eq!(p.hist(Phase::RecvDrain).unwrap().samples(), 1);
        let flush = p.hist(Phase::Flush).unwrap();
        assert_eq!(flush.samples(), 2);
        assert_eq!(flush.max(), 7_000);
        let json = p.json_object();
        assert!(json.contains("\"flush\":{\"count\":2"));
        assert!(json.contains("\"recv_drain\""));
        let table = p.render_table();
        assert!(table.contains("poll_encode"));
    }
}
