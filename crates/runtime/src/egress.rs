//! Bounded per-connection egress queues.
//!
//! The state machines generate segments on `poll`; the kernel accepts them
//! on `send_to`. Between the two sits a small bounded queue so that a slow
//! or briefly unwritable socket exerts backpressure on the *connection*
//! (the loop simply stops polling it) instead of growing an unbounded
//! buffer or dropping segments the state machine believes are in flight.
//! Congestion control already bounds how much a connection wants in the
//! air, so a modest cap is enough to keep the pipe busy.

use std::collections::VecDeque;
use std::net::SocketAddr;

use mptcp_packet::PooledBuf;
use mptcp_telemetry::{CounterId, GaugeId};

use crate::paths::{PathSet, SendOutcome};
use crate::stats::RuntimeStats;

/// A framed datagram waiting for the kernel. The buffer is pooled: a
/// segment is encoded exactly once, survives `WouldBlock` retries in
/// place, and its buffer recycles when the entry leaves the queue.
struct Pending {
    path: usize,
    peer: SocketAddr,
    datagram: PooledBuf,
}

/// FIFO of framed datagrams with a hard capacity.
pub struct Egress {
    q: VecDeque<Pending>,
    cap: usize,
}

impl Egress {
    /// A queue that holds at most `cap` datagrams.
    pub fn new(cap: usize) -> Egress {
        Egress {
            q: VecDeque::with_capacity(cap),
            cap: cap.max(1),
        }
    }

    /// Whether another datagram may be enqueued.
    pub fn has_room(&self) -> bool {
        self.q.len() < self.cap
    }

    /// Queued datagrams.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Enqueue one framed datagram. Callers must check [`Egress::has_room`]
    /// first; pushing into a full queue is a logic error upstream (the loop
    /// should have stopped polling the connection).
    pub fn push(&mut self, path: usize, peer: SocketAddr, datagram: PooledBuf) {
        debug_assert!(self.has_room(), "egress pushed past capacity");
        self.q.push_back(Pending {
            path,
            peer,
            datagram,
        });
    }

    /// Write queued datagrams to their paths until the queue empties or the
    /// kernel pushes back. Returns how many were handed to the kernel.
    pub fn flush(&mut self, paths: &mut PathSet, stats: &mut RuntimeStats) -> usize {
        // Record the pre-flush depth so the gauge's high-water mark shows
        // peak queue occupancy, not the (usually empty) post-flush state.
        stats
            .rec
            .gauge_set(GaugeId::RtEgressQueueDepth, self.q.len() as u64);
        let mut sent = 0;
        while let Some(p) = self.q.front() {
            match paths.send(p.path, p.peer, &p.datagram) {
                SendOutcome::Sent => {
                    self.q.pop_front();
                    sent += 1;
                    stats.rec.count(CounterId::RtDatagramsTx);
                }
                SendOutcome::Dropped => {
                    // Blocked path or hard error: the datagram is gone, as
                    // it would be on a dead link. Loss recovery owns it now.
                    self.q.pop_front();
                }
                SendOutcome::Busy => break,
            }
        }
        stats
            .rec
            .gauge_set(GaugeId::RtEgressQueueDepth, self.q.len() as u64);
        sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_packet::BufPool;

    fn frame(pool: &BufPool, fill: u8, len: usize) -> PooledBuf {
        let mut b = pool.checkout();
        b.resize(len, fill);
        b
    }

    #[test]
    fn capacity_gates_room() {
        let pool = BufPool::new(64, 8);
        let mut e = Egress::new(2);
        let peer: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(e.has_room());
        e.push(0, peer, frame(&pool, 1, 1));
        e.push(0, peer, frame(&pool, 2, 1));
        assert!(!e.has_room());
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn flush_drains_in_order_and_recycles_buffers() {
        let mut paths = PathSet::bind(&["127.0.0.1:0".parse().unwrap()]).unwrap();
        let sink = PathSet::bind(&["127.0.0.1:0".parse().unwrap()]).unwrap();
        let peer = sink.local_addr(0).unwrap();
        let pool = paths.pool();
        let mut stats = RuntimeStats::new();
        let mut e = Egress::new(8);
        e.push(0, peer, frame(&pool, 0, 32));
        e.push(0, peer, frame(&pool, 0, 32));
        assert_eq!(pool.stats().outstanding, 2);
        let sent = e.flush(&mut paths, &mut stats);
        assert_eq!(sent, 2);
        assert!(e.is_empty());
        assert_eq!(stats.rec.counter(CounterId::RtDatagramsTx), 2);
        assert_eq!(pool.stats().outstanding, 0, "flushed buffers recycled");
    }
}
