//! Event-loop instrumentation.
//!
//! Runtime counters/gauges live in the shared [`mptcp_telemetry::Recorder`]
//! (the `Rt*` ids) so one snapshot carries both protocol-level and
//! loop-level signals. Tick skew — how late a wall-clock tick fired
//! relative to the deadline `poll_at` asked for — additionally feeds a
//! log-scaled histogram so the loop can report p50/p99/max latency without
//! retaining per-sample memory.

use mptcp_packet::PoolStats;
use mptcp_telemetry::{CounterId, GaugeId, Recorder};

/// Power-of-two skew buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 is `[0, 2)`).
const SKEW_BUCKETS: usize = 48;

/// Loop instrumentation: shared recorder plus the tick-skew histogram.
pub struct RuntimeStats {
    /// Counters and gauges, absorbed into connection snapshots on report.
    pub rec: Recorder,
    skew: [u64; SKEW_BUCKETS],
    skew_samples: u64,
    skew_max_ns: u64,
    /// Pool totals already mirrored into the recorder, so repeated
    /// [`RuntimeStats::sync_pool`] calls add only the delta.
    pool_hits_seen: u64,
    pool_misses_seen: u64,
}

impl RuntimeStats {
    pub fn new() -> RuntimeStats {
        RuntimeStats {
            rec: Recorder::new(),
            skew: [0; SKEW_BUCKETS],
            skew_samples: 0,
            skew_max_ns: 0,
            pool_hits_seen: 0,
            pool_misses_seen: 0,
        }
    }

    /// Mirror buffer-pool statistics into the shared recorder: cumulative
    /// hit/miss counters plus the `rt_pool_bufs` gauge (whose high-water
    /// mark is taken from the pool's own atomically-tracked peak, so it is
    /// exact even between sync points).
    pub fn sync_pool(&mut self, s: PoolStats) {
        self.rec
            .count_n(CounterId::RtPoolHits, s.hits - self.pool_hits_seen);
        self.rec
            .count_n(CounterId::RtPoolMisses, s.misses - self.pool_misses_seen);
        self.pool_hits_seen = s.hits;
        self.pool_misses_seen = s.misses;
        self.rec.gauge_set(GaugeId::RtPoolBufs, s.high_water);
        self.rec.gauge_set(GaugeId::RtPoolBufs, s.outstanding);
    }

    /// Record a late tick: the loop woke `skew_ns` after the promised
    /// deadline. Updates the counter, the high-water gauge, and the
    /// histogram.
    pub fn record_late_tick(&mut self, skew_ns: u64) {
        self.rec.count(CounterId::RtLateTicks);
        self.rec.gauge_set(GaugeId::RtTickSkewNs, skew_ns);
        let bucket = (64 - u64::leading_zeros(skew_ns.max(1)) - 1) as usize;
        self.skew[bucket.min(SKEW_BUCKETS - 1)] += 1;
        self.skew_samples += 1;
        self.skew_max_ns = self.skew_max_ns.max(skew_ns);
    }

    /// Number of late-tick samples recorded.
    pub fn skew_samples(&self) -> u64 {
        self.skew_samples
    }

    /// Worst observed skew in nanoseconds.
    pub fn skew_max_ns(&self) -> u64 {
        self.skew_max_ns
    }

    /// Skew at quantile `q` (0.0..=1.0), as the upper bound of the bucket
    /// holding that quantile. Zero when no sample was recorded.
    pub fn skew_quantile_ns(&self, q: f64) -> u64 {
        if self.skew_samples == 0 {
            return 0;
        }
        let rank = ((self.skew_samples as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.skew.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i, capped at the true max so a
                // single huge sample doesn't report double its value.
                return (1u64 << (i + 1)).min(self.skew_max_ns.max(1));
            }
        }
        self.skew_max_ns
    }

    /// JSON object fragment with the loop's headline numbers (no braces;
    /// callers splice it into a larger object).
    pub fn json_fields(&self) -> String {
        let c = |id: CounterId| self.rec.counter(id);
        format!(
            "\"loop_iterations\":{},\"datagrams_rx\":{},\"datagrams_tx\":{},\
             \"decode_errors\":{},\"egress_backpressure\":{},\
             \"egress_queue_high_water\":{},\"late_ticks\":{},\
             \"tick_skew_p50_ns\":{},\"tick_skew_p99_ns\":{},\"tick_skew_max_ns\":{},\
             \"pool_hits\":{},\"pool_misses\":{},\"pool_high_water\":{}",
            c(CounterId::RtLoopIterations),
            c(CounterId::RtDatagramsRx),
            c(CounterId::RtDatagramsTx),
            c(CounterId::RtDecodeErrors),
            c(CounterId::RtEgressBackpressure),
            self.rec.gauge(GaugeId::RtEgressQueueDepth).max,
            c(CounterId::RtLateTicks),
            self.skew_quantile_ns(0.50),
            self.skew_quantile_ns(0.99),
            self.skew_max_ns,
            c(CounterId::RtPoolHits),
            c(CounterId::RtPoolMisses),
            self.rec.gauge(GaugeId::RtPoolBufs).max,
        )
    }
}

impl Default for RuntimeStats {
    fn default() -> Self {
        RuntimeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_bucketed_samples() {
        let mut s = RuntimeStats::new();
        for _ in 0..99 {
            s.record_late_tick(1_000); // bucket [512, 1024*2)
        }
        s.record_late_tick(1_000_000);
        assert_eq!(s.skew_samples(), 100);
        assert_eq!(s.skew_max_ns(), 1_000_000);
        let p50 = s.skew_quantile_ns(0.50);
        assert!((512..=2048).contains(&p50), "p50 {p50}");
        // p99 rank lands on the 99th of the small samples.
        assert!(s.skew_quantile_ns(0.99) <= 2048);
        assert!(s.skew_quantile_ns(1.0) >= 524_288);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = RuntimeStats::new();
        assert_eq!(s.skew_quantile_ns(0.99), 0);
        assert_eq!(s.skew_max_ns(), 0);
    }
}
