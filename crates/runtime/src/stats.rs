//! Event-loop instrumentation.
//!
//! Runtime counters/gauges live in the shared [`mptcp_telemetry::Recorder`]
//! (the `Rt*` ids) so one snapshot carries both protocol-level and
//! loop-level signals. Tick skew — how late a wall-clock tick fired
//! relative to the deadline `poll_at` asked for — additionally feeds a
//! [`LogHistogram`] so the loop can report p50/p99/max latency without
//! retaining per-sample memory. JSON output iterates the registry lists
//! below, so the runtime JSON, Prometheus exposition, and `RunReport`
//! all read the same names from the same ids and cannot drift.

use mptcp_packet::PoolStats;
use mptcp_telemetry::{CounterId, GaugeId, LogHistogram, Recorder};

/// The counters the runtime loop itself owns, in report order. Exposition
/// and JSON iterate this list instead of hand-listing ids.
pub const RUNTIME_COUNTERS: &[CounterId] = &[
    CounterId::RtLoopIterations,
    CounterId::RtRecvBatches,
    CounterId::RtSendBatches,
    CounterId::RtDatagramsRx,
    CounterId::RtDatagramsTx,
    CounterId::RtDecodeErrors,
    CounterId::RtEgressBackpressure,
    CounterId::RtLateTicks,
    CounterId::RtPoolHits,
    CounterId::RtPoolMisses,
    CounterId::RtAdminRequests,
];

/// The gauges the runtime loop itself owns, in report order.
pub const RUNTIME_GAUGES: &[GaugeId] = &[
    GaugeId::RtEgressQueueDepth,
    GaugeId::RtTickSkewNs,
    GaugeId::RtPoolOutstanding,
    GaugeId::RtPoolHighWater,
];

/// Loop instrumentation: shared recorder plus the tick-skew histogram.
pub struct RuntimeStats {
    /// Counters and gauges, absorbed into connection snapshots on report.
    pub rec: Recorder,
    skew: LogHistogram,
    /// Pool totals already mirrored into the recorder, so repeated
    /// [`RuntimeStats::sync_pool`] calls add only the delta.
    pool_hits_seen: u64,
    pool_misses_seen: u64,
}

impl RuntimeStats {
    pub fn new() -> RuntimeStats {
        RuntimeStats {
            rec: Recorder::new(),
            skew: LogHistogram::new(),
            pool_hits_seen: 0,
            pool_misses_seen: 0,
        }
    }

    /// Mirror buffer-pool statistics into the shared recorder: cumulative
    /// hit/miss counters plus two gauges — `rt_pool_outstanding` (buffers
    /// checked out right now) and `rt_pool_high_water` (the pool's own
    /// atomically-tracked peak, exact even between sync points).
    pub fn sync_pool(&mut self, s: PoolStats) {
        self.rec
            .count_n(CounterId::RtPoolHits, s.hits - self.pool_hits_seen);
        self.rec
            .count_n(CounterId::RtPoolMisses, s.misses - self.pool_misses_seen);
        self.pool_hits_seen = s.hits;
        self.pool_misses_seen = s.misses;
        self.rec
            .gauge_set(GaugeId::RtPoolOutstanding, s.outstanding);
        self.rec.gauge_set(GaugeId::RtPoolHighWater, s.high_water);
    }

    /// Record a late tick: the loop woke `skew_ns` after the promised
    /// deadline. Updates the counter, the high-water gauge, and the
    /// histogram.
    pub fn record_late_tick(&mut self, skew_ns: u64) {
        self.rec.count(CounterId::RtLateTicks);
        self.rec.gauge_set(GaugeId::RtTickSkewNs, skew_ns);
        self.skew.record(skew_ns);
    }

    /// Number of late-tick samples recorded.
    pub fn skew_samples(&self) -> u64 {
        self.skew.samples()
    }

    /// Worst observed skew in nanoseconds.
    pub fn skew_max_ns(&self) -> u64 {
        self.skew.max()
    }

    /// Skew at quantile `q` (0.0..=1.0). Zero when no sample was recorded.
    pub fn skew_quantile_ns(&self, q: f64) -> u64 {
        self.skew.quantile(q)
    }

    /// The tick-skew histogram itself (for exposition summaries).
    pub fn skew_hist(&self) -> &LogHistogram {
        &self.skew
    }

    /// JSON object fragment with the loop's numbers (no braces; callers
    /// splice it into a larger object). Keys come straight from the
    /// telemetry registry: every counter in [`RUNTIME_COUNTERS`] under its
    /// `name()`, every gauge in [`RUNTIME_GAUGES`] as `<name>` (current)
    /// plus `<name>_peak` (high-water), then the skew quantiles.
    pub fn json_fields(&self) -> String {
        let mut out = String::new();
        for &id in RUNTIME_COUNTERS {
            out.push_str(&format!("\"{}\":{},", id.name(), self.rec.counter(id)));
        }
        for &id in RUNTIME_GAUGES {
            let g = self.rec.gauge(id);
            out.push_str(&format!(
                "\"{}\":{},\"{}_peak\":{},",
                id.name(),
                g.current,
                id.name(),
                g.max
            ));
        }
        out.push_str(&format!(
            "\"rt_tick_skew_p50_ns\":{},\"rt_tick_skew_p99_ns\":{},\"rt_tick_skew_max_ns\":{}",
            self.skew.quantile(0.50),
            self.skew.quantile(0.99),
            self.skew.max()
        ));
        out
    }
}

impl Default for RuntimeStats {
    fn default() -> Self {
        RuntimeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_bucketed_samples() {
        let mut s = RuntimeStats::new();
        for _ in 0..99 {
            s.record_late_tick(1_000);
        }
        s.record_late_tick(1_000_000);
        assert_eq!(s.skew_samples(), 100);
        assert_eq!(s.skew_max_ns(), 1_000_000);
        let p50 = s.skew_quantile_ns(0.50);
        assert!((512..=2048).contains(&p50), "p50 {p50}");
        // p99 rank lands on the 99th of the small samples.
        assert!(s.skew_quantile_ns(0.99) <= 2048);
        assert!(s.skew_quantile_ns(1.0) >= 524_288);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = RuntimeStats::new();
        assert_eq!(s.skew_quantile_ns(0.99), 0);
        assert_eq!(s.skew_max_ns(), 0);
    }

    #[test]
    fn sync_pool_splits_outstanding_and_high_water() {
        let mut s = RuntimeStats::new();
        s.sync_pool(PoolStats {
            hits: 10,
            misses: 2,
            outstanding: 3,
            high_water: 7,
        });
        assert_eq!(s.rec.gauge(GaugeId::RtPoolOutstanding).current, 3);
        assert_eq!(s.rec.gauge(GaugeId::RtPoolHighWater).current, 7);
        assert_eq!(s.rec.counter(CounterId::RtPoolHits), 10);
        // A second sync adds only the delta and tracks the new currents.
        s.sync_pool(PoolStats {
            hits: 14,
            misses: 2,
            outstanding: 1,
            high_water: 9,
        });
        assert_eq!(s.rec.counter(CounterId::RtPoolHits), 14);
        assert_eq!(s.rec.gauge(GaugeId::RtPoolOutstanding).current, 1);
        assert_eq!(s.rec.gauge(GaugeId::RtPoolOutstanding).max, 3);
        assert_eq!(s.rec.gauge(GaugeId::RtPoolHighWater).current, 9);
    }

    #[test]
    fn json_fields_come_from_the_registry() {
        let mut s = RuntimeStats::new();
        s.rec.count(CounterId::RtLoopIterations);
        s.record_late_tick(5_000);
        let json = format!("{{{}}}", s.json_fields());
        for &id in RUNTIME_COUNTERS {
            assert!(
                json.contains(&format!("\"{}\":", id.name())),
                "missing {}",
                id.name()
            );
        }
        for &id in RUNTIME_GAUGES {
            assert!(json.contains(&format!("\"{}\":", id.name())));
            assert!(json.contains(&format!("\"{}_peak\":", id.name())));
        }
        assert!(json.contains("\"rt_tick_skew_p99_ns\":"));
        assert!(json.contains("\"rt_loop_iterations\":1"));
    }
}
