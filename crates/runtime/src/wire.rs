//! UDP datagram framing for encapsulated TCP segments.
//!
//! One datagram carries exactly one encoded [`TcpSegment`]. The TCP header
//! holds ports but not IP addresses, and the window field travels
//! pre-scaled, so a 13-byte encapsulation header carries what the segment
//! bytes alone cannot:
//!
//! ```text
//! offset  len  field
//! 0       4    magic  b"MPU1"
//! 4       1    window-scale shift applied by the sender's encoder
//! 5       4    virtual source IPv4 address (big-endian)
//! 9       4    virtual destination IPv4 address (big-endian)
//! 13      -    TCP header + options + payload (TcpSegment::encode)
//! ```
//!
//! The virtual addresses name the MPTCP four-tuple — the identity the state
//! machines demux on — while the real UDP source address tells the receiver
//! where to send replies. Decoupling the two is what lets the same
//! connection logic run over loopback, LAN, or anything else UDP crosses,
//! and lets the receiver's route table follow a peer whose real address
//! changes (e.g. NAT rebinding) without disturbing the connection.
//!
//! The receiver verifies the TCP checksum over the virtual pseudo-header
//! ([`TcpSegment::decode_verified`]) before any segment reaches a state
//! machine, so a corrupt or truncated datagram is counted and dropped, never
//! parsed into nonsense.

use bytes::Bytes;
use mptcp_packet::{TcpSegment, WireDecodeError};

/// Frame magic: identifies (and versions) the encapsulation.
pub const MAGIC: [u8; 4] = *b"MPU1";

/// Encapsulation header length.
pub const FRAME_HEADER_LEN: usize = 13;

/// Window-scale shift applied on the wire. The 16-bit window field then
/// represents up to `65535 << 10` = 64 MiB, comfortably above any buffer
/// this runtime configures, at a granularity of 1 KiB (windows round down;
/// the loss is conservative).
pub const WIRE_WSCALE: u8 = 10;

/// Why an incoming datagram was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the encapsulation header.
    TooShort,
    /// Bad magic: not ours, or an incompatible framing version.
    BadMagic,
    /// The embedded TCP segment failed structural or checksum verification.
    Segment(WireDecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "datagram shorter than frame header"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Segment(e) => write!(f, "embedded segment: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode `seg` as a self-contained datagram appended to `out`.
///
/// Single-pass: the frame header and the TCP bytes are written directly
/// into `out` (typically a pooled buffer), with no intermediate vector.
///
/// Panics only if the segment's options exceed TCP's 40-byte option space,
/// which the state machines never produce.
pub fn encode_datagram_into(seg: &TcpSegment, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_WSCALE);
    out.extend_from_slice(&seg.tuple.src.addr.to_be_bytes());
    out.extend_from_slice(&seg.tuple.dst.addr.to_be_bytes());
    seg.encode_into(WIRE_WSCALE, out)
        .expect("state machines never emit >40 bytes of options");
}

/// Encode `seg` into a fresh self-contained datagram.
pub fn encode_datagram(seg: &TcpSegment) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 60 + seg.payload.len());
    encode_datagram_into(seg, &mut out);
    out
}

/// Shared framing checks: magic, length, virtual addresses.
fn parse_frame_header(bytes: &[u8]) -> Result<(u8, u32, u32), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::TooShort);
    }
    if bytes[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let wscale = bytes[4];
    let src = u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    let dst = u32::from_be_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
    Ok((wscale, src, dst))
}

/// Decode and verify one datagram into a [`TcpSegment`].
pub fn decode_datagram(bytes: &[u8]) -> Result<TcpSegment, FrameError> {
    let (wscale, src, dst) = parse_frame_header(bytes)?;
    TcpSegment::decode_verified(&bytes[FRAME_HEADER_LEN..], src, dst, wscale)
        .map_err(FrameError::Segment)
}

/// Decode and verify one datagram with the payload *viewed*, not copied:
/// the returned segment's payload is a zero-copy slice of `bytes` (and
/// keeps the underlying storage — e.g. a pooled buffer — alive until the
/// payload is dropped).
pub fn decode_datagram_view(bytes: &Bytes) -> Result<TcpSegment, FrameError> {
    let (wscale, src, dst) = parse_frame_header(bytes)?;
    let tcp = bytes.slice(FRAME_HEADER_LEN..);
    TcpSegment::decode_verified_view(&tcp, src, dst, wscale).map_err(FrameError::Segment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mptcp_packet::{Endpoint, FourTuple, SeqNum, TcpFlags};

    fn sample() -> TcpSegment {
        let mut seg = TcpSegment::new(
            FourTuple {
                src: Endpoint::new(0x0a000102, 45000),
                dst: Endpoint::new(0x0a000101, 9000),
            },
            SeqNum(1000),
            SeqNum(2000),
            TcpFlags::ACK,
        );
        seg.window = 128 << WIRE_WSCALE;
        seg.payload = Bytes::from_static(b"hello over udp");
        seg
    }

    #[test]
    fn roundtrip() {
        let seg = sample();
        let wire = encode_datagram(&seg);
        let back = decode_datagram(&wire).expect("roundtrips");
        assert_eq!(back, seg);
    }

    #[test]
    fn view_roundtrip_shares_storage() {
        let seg = sample();
        let wire = Bytes::from(encode_datagram(&seg));
        let back = decode_datagram_view(&wire).expect("roundtrips");
        assert_eq!(back, seg);
        // The payload is a window into the datagram, not a copy.
        let tail = &wire[wire.len() - seg.payload.len()..];
        assert_eq!(back.payload.as_ref().as_ptr(), tail.as_ptr());
    }

    #[test]
    fn encode_into_appends_after_existing_bytes() {
        let seg = sample();
        let mut buf = vec![0xEE; 3];
        encode_datagram_into(&seg, &mut buf);
        assert_eq!(&buf[..3], &[0xEE; 3]);
        assert_eq!(&buf[3..], &encode_datagram(&seg)[..]);
    }

    #[test]
    fn rejects_short_and_foreign_datagrams() {
        assert_eq!(decode_datagram(&[]), Err(FrameError::TooShort));
        assert_eq!(decode_datagram(&[0u8; 12]), Err(FrameError::TooShort));
        let mut wire = encode_datagram(&sample());
        wire[0] ^= 0xff;
        assert_eq!(decode_datagram(&wire), Err(FrameError::BadMagic));
    }

    #[test]
    fn rejects_corrupted_payload() {
        let mut wire = encode_datagram(&sample());
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert!(matches!(
            decode_datagram(&wire),
            Err(FrameError::Segment(_))
        ));
    }

    #[test]
    fn rejects_truncated_segment() {
        let wire = encode_datagram(&sample());
        assert!(decode_datagram(&wire[..FRAME_HEADER_LEN + 10]).is_err());
    }
}
