//! Client-side event loop: one MPTCP connection over N real UDP paths.

use std::io;
use std::net::SocketAddr;
use std::time::Instant;

use mptcp::{MptcpConfig, MptcpConnection, SubflowError};
use mptcp_netsim::{SimRng, SimTime};
use mptcp_packet::{BufPool, TcpSegment};
use mptcp_telemetry::CounterId;

use crate::clock::{Clock, WallClock};
use crate::egress::Egress;
use crate::paths::PathSet;
use crate::profile::{LoopProfiler, Phase};
use crate::proto::ConnApp;
use crate::stats::RuntimeStats;
use crate::{virtual_tuple, LoopConfig, RuntimeError};

/// One connection, one app, N UDP paths, driven by a readiness loop.
pub struct ClientRuntime<A: ConnApp> {
    clock: WallClock,
    conn: MptcpConnection,
    app: A,
    paths: PathSet,
    server_addrs: Vec<SocketAddr>,
    egress: Egress,
    /// Datagram buffers, shared with `paths`' ingress side.
    pool: BufPool,
    stats: RuntimeStats,
    cfg: LoopConfig,
    ingress: Vec<TcpSegment>,
    joined: bool,
    /// The deadline the previous step promised to honor; compared against
    /// the next wake-up to measure tick skew.
    promised: Option<SimTime>,
    profiler: LoopProfiler,
}

impl<A: ConnApp> ClientRuntime<A> {
    /// Bind `local_binds` (one per path; use port 0 for ephemeral), aim
    /// each path at the matching entry of `server_addrs`, and active-open
    /// the connection on path 0.
    pub fn connect(
        mptcp: MptcpConfig,
        seed: u64,
        local_binds: &[SocketAddr],
        server_addrs: &[SocketAddr],
        app: A,
        cfg: LoopConfig,
    ) -> io::Result<ClientRuntime<A>> {
        assert_eq!(
            local_binds.len(),
            server_addrs.len(),
            "one server address per local path"
        );
        assert!(!local_binds.is_empty(), "at least one path");
        let mut paths = PathSet::bind(local_binds)?;
        let clock = WallClock::new();
        let now = clock.now();

        let tuple0 = virtual_tuple(0, paths.local_addr(0)?.port(), server_addrs[0].port());
        paths.learn(tuple0, 0, server_addrs[0]);
        let conn = MptcpConnection::client(mptcp, tuple0, now, SimRng::new(seed));

        let pool = paths.pool();
        Ok(ClientRuntime {
            clock,
            conn,
            app,
            paths,
            server_addrs: server_addrs.to_vec(),
            egress: Egress::new(cfg.egress_cap),
            pool,
            stats: RuntimeStats::new(),
            cfg,
            ingress: Vec::new(),
            joined: false,
            promised: None,
            profiler: LoopProfiler::new(cfg.profile),
        })
    }

    /// One loop iteration: drain ingress, drive the app, pump output,
    /// flush. Returns whether any datagram moved (progress).
    pub fn step(&mut self) -> bool {
        let mut lap = self.profiler.start();
        let now = self.clock.now();
        self.stats.rec.count(CounterId::RtLoopIterations);
        if let Some(d) = self.promised.take() {
            if d > SimTime::ZERO && now > d {
                self.stats.record_late_tick(now.0 - d.0);
            }
        }

        // Ingress: drain every path, then feed the state machine.
        let mut rx = 0;
        for i in 0..self.paths.len() {
            rx += self
                .paths
                .drain(i, self.cfg.recv_batch, &mut self.stats, &mut self.ingress);
        }
        if rx > 0 {
            self.stats.rec.count(CounterId::RtRecvBatches);
        }
        lap = self.profiler.lap(lap, Phase::RecvDrain);
        // Whole-batch handoff: one subflow-stream drain per touched
        // subflow instead of one per datagram. `clear` (not `take`) keeps
        // the vector's capacity across iterations.
        self.conn.handle_segments(now, &self.ingress);
        self.ingress.clear();
        lap = self.profiler.lap(lap, Phase::Demux);

        // Application progress, then join any paths that became available.
        self.app.drive(&mut self.conn, now);
        self.open_pending_joins(now);
        lap = self.profiler.lap(lap, Phase::Drive);

        // Pump connection output into the bounded egress queue.
        let polled = self.pump(now);
        lap = self.profiler.lap(lap, Phase::PollEncode);

        // Flush to the kernel.
        let tx = self.egress.flush(&mut self.paths, &mut self.stats);
        if tx > 0 {
            self.stats.rec.count(CounterId::RtSendBatches);
        }
        self.profiler.lap(lap, Phase::Flush);
        self.stats.sync_pool(self.pool.stats());

        self.promised = self.conn.poll_at(now);
        rx > 0 || tx > 0 || polled > 0
    }

    fn pump(&mut self, now: SimTime) -> usize {
        let mut polled = 0;
        loop {
            if !self.egress.has_room() {
                // Queue still full after the last flush: the kernel is the
                // bottleneck, so leave the connection unpolled (that is the
                // backpressure) and try again next iteration.
                self.stats.rec.count(CounterId::RtEgressBackpressure);
                break;
            }
            let Some(seg) = self.conn.poll(now) else {
                break;
            };
            polled += 1;
            if let Some(route) = self.paths.route(seg.tuple) {
                // Encode once, into a pooled buffer; the frame stays
                // encoded across `WouldBlock` retries and the buffer
                // recycles once the kernel takes it.
                let mut frame = self.pool.checkout();
                crate::wire::encode_datagram_into(&seg, &mut frame);
                self.egress.push(route.path, route.peer, frame);
            }
            // Segments without a route can only belong to a subflow whose
            // path was never registered; dropping them is indistinguishable
            // from loss and recovery handles it.
        }
        polled
    }

    fn open_pending_joins(&mut self, now: SimTime) {
        if self.joined || !self.conn.is_established() {
            return;
        }
        for i in 1..self.paths.len() {
            let Ok(local) = self.paths.local_addr(i) else {
                continue;
            };
            let tuple = virtual_tuple(i, local.port(), self.server_addrs[i].port());
            match self.conn.open_subflow(tuple.src, tuple.dst, now) {
                Ok(_) | Err(SubflowError::DuplicateSubflow) => {
                    self.paths.learn(tuple, i, self.server_addrs[i]);
                }
                Err(_) => {}
            }
        }
        self.joined = true;
    }

    /// Sleep until the next protocol deadline, capped at the loop's idle
    /// cap so arriving datagrams are noticed promptly. (A std-only loop has
    /// no multi-socket readiness syscall, so bounded polling stands in for
    /// epoll; the cap bounds added ingress latency.)
    pub fn idle_wait(&mut self) {
        let now = self.clock.now();
        let cap = self.cfg.idle_sleep;
        let sleep = match self.promised {
            Some(d) if d <= now => return,
            Some(d) => std::time::Duration::from_nanos(d.0 - now.0).min(cap),
            None => cap,
        };
        if !sleep.is_zero() {
            let t = self.profiler.start();
            std::thread::sleep(sleep);
            self.profiler.lap(t, Phase::Idle);
        }
    }

    /// Drive until the app finishes, then linger briefly for the close
    /// handshake. Errors on connection abort or timeout.
    pub fn run(&mut self, timeout: std::time::Duration) -> Result<(), RuntimeError> {
        let hard = Instant::now() + timeout;
        while !self.app.finished() {
            if let Some(reason) = self.conn.abort_reason() {
                return Err(RuntimeError::Aborted(reason));
            }
            if !self.step() {
                self.idle_wait();
            }
            if Instant::now() > hard {
                return Err(RuntimeError::Timeout);
            }
        }
        // Best-effort close handshake; the transfer itself is done.
        let linger = Instant::now() + std::time::Duration::from_millis(500);
        while !self.conn.fully_closed() && Instant::now() < linger {
            if !self.step() {
                self.idle_wait();
            }
        }
        Ok(())
    }

    /// Block or unblock a path (fault injection for tests and demos).
    pub fn block_path(&mut self, i: usize, blocked: bool) {
        self.paths.set_blocked(i, blocked);
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The connection (telemetry, stats, subflows).
    pub fn conn(&self) -> &MptcpConnection {
        &self.conn
    }

    /// Loop instrumentation.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Loop-phase timing histograms (inert unless `cfg.profile`).
    pub fn profiler(&self) -> &LoopProfiler {
        &self.profiler
    }
}
