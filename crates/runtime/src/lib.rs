//! Real-network runtime for the MPTCP implementation.
//!
//! The simulator proves the protocol logic; this crate proves it *deploys*:
//! the same unmodified state machines ([`mptcp::MptcpConnection`],
//! [`mptcp::MptcpListener`]) run here over real, non-blocking
//! [`std::net::UdpSocket`]s — one UDP four-tuple per subflow — so two
//! actual processes speak MPTCP to each other across loopback or a LAN.
//! The paper's deployability argument (§2) is that multipath must live
//! inside the transport while presenting an unchanged socket API;
//! encapsulating the segments in UDP is the userspace analogue: no raw
//! sockets, no kernel module, no elevated privileges.
//!
//! Layering:
//!
//! - [`clock`]: maps monotonic wall time onto [`mptcp_netsim::SimTime`] so
//!   the core stays simulator-agnostic.
//! - [`wire`]: one datagram = one checksum-verified [`mptcp_packet::TcpSegment`]
//!   plus the virtual addresses TCP headers don't carry.
//! - [`paths`]: real sockets plus the learned route table from virtual
//!   four-tuples to `(path, real address)`.
//! - [`egress`]: bounded per-connection output queues — kernel pushback
//!   becomes connection backpressure, never unbounded memory.
//! - [`timers`]: a lazy min-heap over `poll_at` deadlines so a server full
//!   of idle connections sleeps instead of scanning.
//! - [`proto`]: the verifiable fetch protocol (`MPFETCH <size> <seed>`)
//!   used by the demo binaries, the smoke test, and the wire benchmark.
//! - [`client`] / [`server`]: the event loops themselves.

pub mod admin;
pub mod client;
pub mod clock;
pub mod egress;
pub mod paths;
pub mod profile;
pub mod proto;
pub mod server;
pub mod stats;
pub mod timers;
pub mod wire;

use std::time::Duration;

use mptcp::AbortReason;
use mptcp_packet::{Endpoint, FourTuple};

pub use admin::{check_monotone, validate_exposition, AdminServer, Exposition};
pub use client::ClientRuntime;
pub use clock::{Clock, ManualClock, WallClock};
pub use profile::{LoopProfiler, Phase};
pub use proto::{ConnApp, FetchClient, FetchServer, Fnv1a, Keystream};
pub use server::{AppFactory, ServerRuntime};
pub use stats::RuntimeStats;

/// Event-loop tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct LoopConfig {
    /// Per-connection egress queue capacity, in datagrams. When full, the
    /// connection is not polled until the kernel drains the queue.
    pub egress_cap: usize,
    /// Datagrams drained per path per iteration before other work runs.
    pub recv_batch: usize,
    /// Idle sleep cap: the longest the loop sleeps regardless of protocol
    /// deadlines, bounding how stale ingress can get (std has no
    /// multi-socket readiness wait).
    pub idle_sleep: Duration,
    /// Collect loop-phase timing histograms (see [`profile::LoopProfiler`]).
    /// Off by default: disabled profiling reads no clocks and allocates
    /// nothing.
    pub profile: bool,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            egress_cap: 256,
            recv_batch: 64,
            idle_sleep: Duration::from_micros(500),
            profile: false,
        }
    }
}

/// Why an event loop stopped.
#[derive(Debug)]
pub enum RuntimeError {
    /// Socket setup or I/O failed.
    Io(std::io::Error),
    /// The wall-clock budget expired before the work completed.
    Timeout,
    /// The connection aborted (e.g. all paths failed past the deadline).
    Aborted(AbortReason),
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "i/o: {e}"),
            RuntimeError::Timeout => write!(f, "timed out"),
            RuntimeError::Aborted(r) => write!(f, "connection aborted: {r:?}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The virtual four-tuple for path `i`, as the client names it.
///
/// Virtual addresses exist so the state machines see distinct, stable
/// endpoint identities per path regardless of the real addressing (which
/// on loopback would collapse to 127.0.0.1 everywhere): path `i` uses the
/// private subnet `10.0.(i+1).0/24` with the client at `.2` and the server
/// at `.1`. Ports carry the *real* UDP ports, which keeps tuples unique
/// across client processes on one machine (ephemeral ports differ) and
/// lets either side log a tuple that is meaningful in a packet capture.
pub fn virtual_tuple(path: usize, client_port: u16, server_port: u16) -> FourTuple {
    let net = 0x0a00_0000 | ((((path as u32) + 1) & 0xff) << 8);
    FourTuple {
        src: Endpoint::new(net | 2, client_port),
        dst: Endpoint::new(net | 1, server_port),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_tuples_are_distinct_per_path() {
        let a = virtual_tuple(0, 1000, 9000);
        let b = virtual_tuple(1, 1001, 9000);
        assert_ne!(a.src.addr, b.src.addr);
        assert_ne!(a.dst.addr, b.dst.addr);
        assert_eq!(a.src.addr, 0x0a000102);
        assert_eq!(a.dst.addr, 0x0a000101);
        assert_eq!(b.src.addr, 0x0a000202);
    }
}
