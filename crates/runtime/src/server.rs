//! Server-side event loop: a listener multiplexing many connections over
//! shared UDP sockets.
//!
//! Demux is entirely the core's: [`mptcp::MptcpListener`] routes segments
//! to connections by virtual four-tuple and MP_JOIN token, so the runtime
//! only moves datagrams. The loop maintains a *dirty set* — connections
//! touched by ingress, an expired deadline, or backlogged egress — and
//! drives exactly those, so idle connections cost nothing per iteration.

use std::io;
use std::net::SocketAddr;
use std::time::Instant;

use mptcp::{MptcpConfig, MptcpListener};
use mptcp_netsim::SimTime;
use mptcp_packet::{BufPool, TcpSegment};
use mptcp_telemetry::CounterId;

use crate::admin::{AdminCtx, AdminServer};
use crate::clock::{Clock, WallClock};
use crate::egress::Egress;
use crate::paths::PathSet;
use crate::profile::{lap_into, LoopProfiler, Phase};
use crate::proto::ConnApp;
use crate::stats::RuntimeStats;
use crate::timers::DeadlineHeap;
use crate::{LoopConfig, RuntimeError};

/// Creates the application attached to each accepted connection.
pub type AppFactory = Box<dyn FnMut() -> Box<dyn ConnApp + Send> + Send>;

/// Listener, per-connection apps and egress queues, and the deadline heap.
pub struct ServerRuntime {
    clock: WallClock,
    listener: MptcpListener,
    apps: Vec<Box<dyn ConnApp + Send>>,
    egress: Vec<Egress>,
    /// Finished *and* fully closed; excluded from all further work.
    reaped: Vec<bool>,
    /// Accept time per connection (for admin `conns` age reporting).
    created: Vec<SimTime>,
    paths: PathSet,
    /// Datagram buffers, shared with `paths`' ingress side.
    pool: BufPool,
    stats: RuntimeStats,
    cfg: LoopConfig,
    timers: DeadlineHeap,
    factory: AppFactory,
    ingress: Vec<TcpSegment>,
    touched: Vec<usize>,
    dirty: Vec<usize>,
    dirty_flag: Vec<bool>,
    due: Vec<usize>,
    served: u64,
    promised: Option<SimTime>,
    profiler: LoopProfiler,
    /// Live introspection plane, polled from this same loop when enabled.
    admin: Option<AdminServer>,
}

impl ServerRuntime {
    /// Bind the given addresses (one socket per path) and serve.
    pub fn bind(
        mptcp: MptcpConfig,
        seed: u64,
        binds: &[SocketAddr],
        factory: AppFactory,
        cfg: LoopConfig,
    ) -> io::Result<ServerRuntime> {
        assert!(!binds.is_empty(), "at least one path");
        let paths = PathSet::bind(binds)?;
        let pool = paths.pool();
        Ok(ServerRuntime {
            clock: WallClock::new(),
            listener: MptcpListener::new(mptcp, seed),
            apps: Vec::new(),
            egress: Vec::new(),
            reaped: Vec::new(),
            created: Vec::new(),
            paths,
            pool,
            stats: RuntimeStats::new(),
            cfg,
            timers: DeadlineHeap::new(),
            factory,
            ingress: Vec::new(),
            touched: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: Vec::new(),
            due: Vec::new(),
            served: 0,
            promised: None,
            profiler: LoopProfiler::new(cfg.profile),
            admin: None,
        })
    }

    /// Bind the admin introspection socket (intended for localhost) and
    /// start answering stat-protocol and `GET /metrics` requests from this
    /// loop. Returns the bound address (useful with port 0).
    pub fn enable_admin(&mut self, addr: SocketAddr) -> io::Result<SocketAddr> {
        let admin = AdminServer::bind(addr)?;
        let local = admin.local_addr()?;
        self.admin = Some(admin);
        Ok(local)
    }

    /// Real local address of path `i`.
    pub fn local_addr(&self, i: usize) -> io::Result<SocketAddr> {
        self.paths.local_addr(i)
    }

    fn ensure(&mut self, idx: usize, now: SimTime) {
        while self.apps.len() <= idx {
            self.apps.push((self.factory)());
            self.egress.push(Egress::new(self.cfg.egress_cap));
            self.reaped.push(false);
            self.created.push(now);
            self.dirty_flag.push(false);
        }
    }

    fn mark(&mut self, idx: usize) {
        if !self.dirty_flag[idx] {
            self.dirty_flag[idx] = true;
            self.dirty.push(idx);
        }
    }

    /// One loop iteration. Returns whether any datagram or segment moved.
    pub fn step(&mut self) -> bool {
        let mut lap = self.profiler.start();
        let now = self.clock.now();
        self.stats.rec.count(CounterId::RtLoopIterations);
        if let Some(d) = self.promised.take() {
            if d > SimTime::ZERO && now > d {
                self.stats.record_late_tick(now.0 - d.0);
            }
        }

        // Ingress on every path; demux marks connections dirty.
        let mut rx = 0;
        for i in 0..self.paths.len() {
            rx += self
                .paths
                .drain(i, self.cfg.recv_batch, &mut self.stats, &mut self.ingress);
        }
        if rx > 0 {
            self.stats.rec.count(CounterId::RtRecvBatches);
        }
        lap = self.profiler.lap(lap, Phase::RecvDrain);
        // Whole-batch handoff: contiguous same-connection runs cost one
        // subflow-stream drain each instead of one per datagram.
        let mut touched = std::mem::take(&mut self.touched);
        self.listener
            .handle_segments(now, &self.ingress, &mut touched);
        self.ingress.clear();
        for idx in touched.drain(..) {
            self.ensure(idx, now);
            self.mark(idx);
        }
        self.touched = touched;

        // Expired deadlines join the dirty set.
        let mut due = std::mem::take(&mut self.due);
        self.timers.pop_due(now, &mut due);
        for idx in due.drain(..) {
            self.mark(idx);
        }
        self.due = due;
        self.profiler.lap(lap, Phase::Demux);

        // Drive exactly the dirty connections. Drive / poll-encode / flush
        // interleave per connection, so their laps accumulate across the
        // loop and are recorded once per iteration.
        let work = std::mem::take(&mut self.dirty);
        let mut polled = 0;
        let mut tx_total = 0;
        let mut acc = [0u64; 3];
        for &idx in &work {
            self.dirty_flag[idx] = false;
        }
        for idx in work {
            if self.reaped[idx] {
                continue;
            }
            let mut t = self.profiler.start();
            let conn = &mut self.listener.conns[idx];
            self.apps[idx].drive(conn, now);
            lap_into(&mut t, &mut acc[0]);
            loop {
                if !self.egress[idx].has_room() {
                    self.stats.rec.count(CounterId::RtEgressBackpressure);
                    break;
                }
                let Some(seg) = conn.poll(now) else { break };
                polled += 1;
                if let Some(route) = self.paths.route(seg.tuple) {
                    let mut frame = self.pool.checkout();
                    crate::wire::encode_datagram_into(&seg, &mut frame);
                    self.egress[idx].push(route.path, route.peer, frame);
                }
            }
            lap_into(&mut t, &mut acc[1]);
            tx_total += self.egress[idx].flush(&mut self.paths, &mut self.stats);
            lap_into(&mut t, &mut acc[2]);
            if !self.egress[idx].is_empty() {
                // Kernel pushback: retry the flush next iteration.
                self.mark(idx);
            }
            let conn = &self.listener.conns[idx];
            // A connection is served once the app is done and the
            // data-level close completed both ways. Waiting for every
            // subflow socket to finish dying would hostage completion to a
            // blackholed path's FIN retransmissions.
            let closed = conn.fully_closed() || (conn.send_closed() && conn.at_eof());
            if self.apps[idx].finished() && closed {
                self.reaped[idx] = true;
                self.served += 1;
                self.timers.schedule(idx, None);
            } else {
                self.timers.schedule(idx, conn.poll_at(now));
            }
        }
        if tx_total > 0 {
            self.stats.rec.count(CounterId::RtSendBatches);
        }
        if self.profiler.enabled() {
            self.profiler.record(Phase::Drive, acc[0]);
            self.profiler.record(Phase::PollEncode, acc[1]);
            self.profiler.record(Phase::Flush, acc[2]);
        }
        self.stats.sync_pool(self.pool.stats());

        if let Some(admin) = self.admin.as_mut() {
            let ctx = AdminCtx {
                listener: &self.listener,
                profiler: &self.profiler,
                paths: &self.paths,
                conn_created: &self.created,
                reaped: &self.reaped,
                now,
                served: self.served,
            };
            admin.poll(&mut self.stats, &ctx);
        }

        self.promised = self.timers.next_deadline();
        rx > 0 || polled > 0 || tx_total > 0 || !self.dirty.is_empty()
    }

    /// Sleep until the earliest connection deadline, capped at the idle
    /// cap (see [`crate::client::ClientRuntime::idle_wait`]).
    pub fn idle_wait(&mut self) {
        let now = self.clock.now();
        let cap = self.cfg.idle_sleep;
        let sleep = match self.promised {
            Some(d) if d <= now => return,
            Some(d) => std::time::Duration::from_nanos(d.0 - now.0).min(cap),
            None => cap,
        };
        if !sleep.is_zero() {
            let t = self.profiler.start();
            std::thread::sleep(sleep);
            self.profiler.lap(t, Phase::Idle);
        }
    }

    /// Serve until `n` connections have finished and closed, or time out.
    pub fn run_until_served(
        &mut self,
        n: u64,
        timeout: std::time::Duration,
    ) -> Result<(), RuntimeError> {
        let hard = Instant::now() + timeout;
        while self.served < n {
            if !self.step() {
                self.idle_wait();
            }
            if Instant::now() > hard {
                return Err(RuntimeError::Timeout);
            }
        }
        Ok(())
    }

    /// Connections that finished their app and fully closed.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total connections ever accepted (including reaped).
    pub fn accepted(&self) -> usize {
        self.listener.len()
    }

    /// The listener (connection table, token table, reject counters).
    pub fn listener(&self) -> &MptcpListener {
        &self.listener
    }

    /// Loop instrumentation.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Loop-phase timing histograms (inert unless `cfg.profile`).
    pub fn profiler(&self) -> &LoopProfiler {
        &self.profiler
    }

    /// Bound admin-socket address, when the admin plane is enabled.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().and_then(|a| a.local_addr().ok())
    }
}
