//! Live introspection plane: the admin socket.
//!
//! A localhost TCP listener polled from the *same* event loop as the
//! connections it describes — never a second thread touching connection
//! state, so every dump is a consistent point-in-time view and the data
//! path needs no locks. It speaks two protocols on one port:
//!
//! - a line-oriented stat protocol (`conns`, `conn <token>`, `paths`,
//!   `profile`, `health`, `metrics`, `help`): one command per line, the
//!   response is text terminated by a line containing a single `.` —
//!   `ss -M`-style per-connection dumps for a live server;
//! - plain HTTP: a request line starting with `GET ` gets an HTTP/1.0
//!   response (`/metrics` serves the Prometheus text exposition), so
//!   `curl http://host:port/metrics` and a scraping Prometheus both work
//!   unconfigured.
//!
//! Everything is non-blocking with per-client read/write buffers: a slow,
//! stalled, or mid-response-disconnecting client can never stall the
//! event loop — writes park in the client's buffer and the client is
//! dropped on error, overflow, or completed close.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use mptcp::{ConnState, MptcpConnection, MptcpListener, PathState};
use mptcp_netsim::SimTime;
use mptcp_telemetry::{CounterId, GaugeId, TelemetrySnapshot};

use crate::paths::PathSet;
use crate::profile::{LoopProfiler, Phase};
use crate::stats::RuntimeStats;

/// Concurrent admin clients; later connections are accepted and dropped.
const MAX_CLIENTS: usize = 8;
/// Longest accepted command line, bytes.
const MAX_LINE: usize = 4096;
/// Per-client pending-write cap; slower consumers are disconnected.
const MAX_WBUF: usize = 4 << 20;

/// Read-only view of the runtime the admin plane reports on, borrowed
/// field-by-field from the event loop for one `poll` call.
pub struct AdminCtx<'a> {
    /// The connection table being described.
    pub listener: &'a MptcpListener,
    /// Loop-phase timing histograms.
    pub profiler: &'a LoopProfiler,
    /// Real sockets and the learned route table.
    pub paths: &'a PathSet,
    /// Per-connection accept time, parallel to `listener.conns`.
    pub conn_created: &'a [SimTime],
    /// Which connections are finished and reaped, parallel to
    /// `listener.conns` (empty on the client runtime).
    pub reaped: &'a [bool],
    /// Current loop time.
    pub now: SimTime,
    /// Connections that finished their app and closed.
    pub served: u64,
}

struct AdminClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    close_after_flush: bool,
    dead: bool,
}

impl AdminClient {
    fn new(stream: TcpStream) -> AdminClient {
        AdminClient {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Queue a stat-protocol response: body plus the `.` terminator line.
    fn respond(&mut self, body: &str) {
        self.wbuf.extend_from_slice(body.as_bytes());
        if !body.is_empty() && !body.ends_with('\n') {
            self.wbuf.push(b'\n');
        }
        self.wbuf.extend_from_slice(b".\n");
    }

    fn respond_http(&mut self, status: &str, body: &str) {
        let head = format!(
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        self.wbuf.extend_from_slice(head.as_bytes());
        self.wbuf.extend_from_slice(body.as_bytes());
        self.close_after_flush = true;
    }

    fn pump_read(&mut self) {
        let mut tmp = [0u8; 4096];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    // Peer closed its write side. Finish flushing whatever
                    // we owe it, then drop the client.
                    if self.wbuf.len() == self.wpos {
                        self.dead = true;
                    } else {
                        self.close_after_flush = true;
                    }
                    return;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&tmp[..n]);
                    if self.rbuf.len() > MAX_LINE && !self.rbuf.contains(&b'\n') {
                        self.dead = true;
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn pump_write(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        } else if self.wbuf.len() - self.wpos > MAX_WBUF {
            self.dead = true;
        }
    }
}

/// The admin listener plus its connected clients.
pub struct AdminServer {
    listener: TcpListener,
    clients: Vec<AdminClient>,
}

impl AdminServer {
    /// Bind the (localhost-intended) admin address, non-blocking.
    pub fn bind(addr: SocketAddr) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(AdminServer {
            listener,
            clients: Vec::new(),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// One non-blocking service round: accept new clients, read and
    /// dispatch complete commands, flush pending responses, drop dead
    /// clients. Called once per event-loop iteration; never blocks.
    pub fn poll(&mut self, stats: &mut RuntimeStats, ctx: &AdminCtx<'_>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.clients.len() >= MAX_CLIENTS || stream.set_nonblocking(true).is_err() {
                        continue; // accepted and immediately dropped
                    }
                    let _ = stream.set_nodelay(true);
                    self.clients.push(AdminClient::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        for c in &mut self.clients {
            if c.dead {
                continue;
            }
            c.pump_read();
            Self::dispatch_buffered(c, stats, ctx);
            c.pump_write();
        }
        self.clients.retain(|c| !c.dead);
    }

    /// Connected admin clients (for tests and health output).
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn dispatch_buffered(c: &mut AdminClient, stats: &mut RuntimeStats, ctx: &AdminCtx<'_>) {
        if c.dead {
            return;
        }
        // HTTP detection: a GET request line gets one HTTP response and a
        // close; any trailing request headers are irrelevant and ignored.
        if c.rbuf.starts_with(b"GET ") {
            let Some(eol) = c.rbuf.iter().position(|&b| b == b'\n') else {
                return;
            };
            let line = String::from_utf8_lossy(&c.rbuf[..eol]).into_owned();
            c.rbuf.clear();
            stats.rec.count(CounterId::RtAdminRequests);
            let path = line.split_whitespace().nth(1).unwrap_or("/");
            if path == "/metrics" || path.starts_with("/metrics?") {
                c.respond_http("200 OK", &prometheus_text(stats, ctx));
            } else {
                c.respond_http("404 Not Found", "not found; try /metrics\n");
            }
            return;
        }
        while let Some(eol) = c.rbuf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = c.rbuf.drain(..=eol).collect();
            let line = String::from_utf8_lossy(&line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            stats.rec.count(CounterId::RtAdminRequests);
            Self::dispatch_line(c, &line, stats, ctx);
            if c.dead || c.close_after_flush {
                break;
            }
        }
    }

    fn dispatch_line(c: &mut AdminClient, line: &str, stats: &RuntimeStats, ctx: &AdminCtx<'_>) {
        let mut words = line.split_whitespace();
        let cmd = words.next().unwrap_or("");
        match cmd {
            "metrics" => c.respond(&prometheus_text(stats, ctx)),
            "conns" => c.respond(&render_conns(ctx)),
            "conn" => match words.next().map(parse_token) {
                Some(Some(token)) => match find_conn(ctx, token) {
                    Some(i) => c.respond(&render_conn_detail(ctx, i)),
                    None => c.respond(&format!("ERR no connection with token {token:08x}")),
                },
                _ => c.respond("ERR usage: conn <hex-token>"),
            },
            "paths" => c.respond(&render_paths(ctx)),
            "profile" => c.respond(&ctx.profiler.render_table()),
            "health" => c.respond(&render_health(stats, ctx)),
            "help" => c.respond(
                "commands: conns | conn <token> | paths | profile | health | metrics | help | quit\n\
                 responses end with a line containing a single '.'\n\
                 HTTP: GET /metrics returns the same exposition for curl/Prometheus",
            ),
            "quit" | "exit" => {
                c.close_after_flush = true;
            }
            other => c.respond(&format!("ERR unknown command: {other}")),
        }
    }
}

fn parse_token(s: &str) -> Option<u32> {
    let hex = s.strip_prefix("0x").unwrap_or(s);
    u32::from_str_radix(hex, 16).ok()
}

fn find_conn(ctx: &AdminCtx<'_>, token: u32) -> Option<usize> {
    ctx.listener
        .conns
        .iter()
        .position(|c| c.local_token() == token)
}

fn conn_state_name(s: ConnState) -> &'static str {
    match s {
        ConnState::Handshake => "handshake",
        ConnState::AwaitingConfirm => "awaiting-confirm",
        ConnState::Established => "established",
        ConnState::Fallback => "fallback",
        ConnState::Closed => "closed",
    }
}

fn path_state_letter(s: PathState) -> char {
    match s {
        PathState::Active => 'A',
        PathState::Suspect => 'S',
        PathState::Failed => 'F',
    }
}

fn ip(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        addr >> 24,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

fn age_secs(ctx: &AdminCtx<'_>, i: usize) -> f64 {
    let created = ctx.conn_created.get(i).copied().unwrap_or(ctx.now);
    (ctx.now.0.saturating_sub(created.0)) as f64 / 1e9
}

/// One compact row per path: `A/S/F` per subflow, `x` once dead.
fn path_states(conn: &MptcpConnection) -> String {
    let mut s = String::new();
    for (i, sf) in conn.subflows().iter().enumerate() {
        if i > 0 {
            s.push('/');
        }
        s.push(if sf.dead {
            'x'
        } else {
            path_state_letter(sf.path_state)
        });
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

fn conn_tx_bytes(conn: &MptcpConnection) -> u64 {
    conn.subflows()
        .iter()
        .map(|sf| sf.sock.stats.bytes_out)
        .sum()
}

fn render_conns(ctx: &AdminCtx<'_>) -> String {
    let mut out = format!(
        "{:<10} {:<16} {:<8} {:>12} {:>12} {:>7} {:>9}\n",
        "TOKEN", "STATE", "PATHS", "TX-BYTES", "RX-BYTES", "REORD", "AGE-S"
    );
    for (i, conn) in ctx.listener.conns.iter().enumerate() {
        let state = if ctx.reaped.get(i).copied().unwrap_or(false) {
            "reaped"
        } else {
            conn_state_name(conn.state())
        };
        out.push_str(&format!(
            "{:<10} {:<16} {:<8} {:>12} {:>12} {:>7} {:>9.2}\n",
            format!("{:08x}", conn.local_token()),
            state,
            path_states(conn),
            conn_tx_bytes(conn),
            conn.stats.bytes_delivered,
            conn.ooo.len(),
            age_secs(ctx, i),
        ));
    }
    out.push_str(&format!("({} connections)\n", ctx.listener.conns.len()));
    out
}

fn render_conn_detail(ctx: &AdminCtx<'_>, i: usize) -> String {
    let conn = &ctx.listener.conns[i];
    let mut out = format!(
        "conn {:08x}\n  state {}  age_s {:.2}  reaped {}\n",
        conn.local_token(),
        conn_state_name(conn.state()),
        age_secs(ctx, i),
        ctx.reaped.get(i).copied().unwrap_or(false),
    );
    out.push_str(&format!(
        "  rcv_buf {}  rcv_window {}  reorder_segs {}  reorder_bytes {}\n",
        conn.rcv_buf_capacity(),
        conn.rcv_window(),
        conn.ooo.len(),
        conn.ooo.buffered_bytes(),
    ));
    let s = &conn.stats;
    out.push_str(&format!(
        "  bytes_written {}  bytes_delivered {}  bytes_scheduled {}  data_outstanding {}\n",
        s.bytes_written,
        s.bytes_delivered,
        s.bytes_scheduled,
        conn.data_outstanding(),
    ));
    out.push_str(&format!(
        "  reinjections {}  penalizations {}  data_rtos {}  path_failures {}  path_recoveries {}\n",
        s.reinjections, s.penalizations, s.data_rtos, s.path_failures, s.path_recoveries,
    ));
    for (k, sf) in conn.subflows().iter().enumerate() {
        let t = sf.sock.tuple();
        out.push_str(&format!(
            "  subflow {k}: {}:{}->{}:{} state {}{}{} cwnd {} srtt_us {} in_flight {} rto_ms {} \
             bytes_out {} bytes_acked {} rtos {} fast_rexmits {}\n",
            ip(t.src.addr),
            t.src.port,
            ip(t.dst.addr),
            t.dst.port,
            match sf.path_state {
                PathState::Active => "Active",
                PathState::Suspect => "Suspect",
                PathState::Failed => "Failed",
            },
            if sf.dead { " dead" } else { "" },
            if sf.backup { " backup" } else { "" },
            sf.sock.cwnd(),
            sf.sock
                .srtt()
                .map(|d| d.as_micros() as u64)
                .unwrap_or_default(),
            sf.sock.bytes_in_flight(),
            sf.sock.rto().as_millis(),
            sf.sock.stats.bytes_out,
            sf.sock.stats.bytes_acked,
            sf.sock.stats.rtos,
            sf.sock.stats.fast_retransmits,
        ));
    }
    out
}

fn render_paths(ctx: &AdminCtx<'_>) -> String {
    let mut out = format!(
        "{:<6} {:<22} {:<8} {:>7}\n",
        "PATH", "LOCAL", "BLOCKED", "ROUTES"
    );
    for i in 0..ctx.paths.len() {
        let local = ctx
            .paths
            .local_addr(i)
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string());
        out.push_str(&format!(
            "{:<6} {:<22} {:<8} {:>7}\n",
            i,
            local,
            ctx.paths.is_blocked(i),
            ctx.paths.routes_on(i),
        ));
    }
    // Per-connection path-manager state: the endpoint registry with its
    // kernel-style flags, the limits in force, and each outstanding
    // ADD_ADDR's echo/retransmit progress.
    for (i, conn) in ctx.listener.conns.iter().enumerate() {
        if ctx.reaped.get(i).copied().unwrap_or(false) {
            continue;
        }
        let pm = conn.path_manager();
        let lim = pm.cfg().limits;
        out.push_str(&format!(
            "pm {:08x}: policy {}  opened {}/{}  remotes {}/{} (+{} ignored)\n",
            conn.local_token(),
            pm.policy().name(),
            pm.subflows_opened(),
            lim.max_subflows,
            pm.remotes_accepted(),
            lim.add_addr_accepted,
            pm.remotes_ignored(),
        ));
        for ep in &pm.cfg().endpoints {
            out.push_str(&format!(
                "  endpoint {:<15} port {:<5} flags {}\n",
                ip(ep.addr),
                ep.port
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "auto".to_string()),
                ep.flags.label(),
            ));
        }
        for (addr, echoed, rtx) in pm.advert_states() {
            out.push_str(&format!(
                "  advert {:<15} echoed {:<5} retransmits {}\n",
                ip(addr),
                echoed,
                rtx,
            ));
        }
    }
    out
}

fn render_health(stats: &RuntimeStats, ctx: &AdminCtx<'_>) -> String {
    let live = ctx
        .listener
        .conns
        .iter()
        .enumerate()
        .filter(|(i, _)| !ctx.reaped.get(*i).copied().unwrap_or(false))
        .count();
    let c = |id: CounterId| stats.rec.counter(id);
    let mut out = String::new();
    let mut kv = |k: &str, v: String| out.push_str(&format!("{k:<24} {v}\n"));
    kv("served", ctx.served.to_string());
    kv("accepted", ctx.listener.conns.len().to_string());
    kv("live", live.to_string());
    kv("paths", ctx.paths.len().to_string());
    kv(
        "loop_iterations",
        c(CounterId::RtLoopIterations).to_string(),
    );
    kv("datagrams_rx", c(CounterId::RtDatagramsRx).to_string());
    kv("datagrams_tx", c(CounterId::RtDatagramsTx).to_string());
    kv("decode_errors", c(CounterId::RtDecodeErrors).to_string());
    kv(
        "egress_backpressure",
        c(CounterId::RtEgressBackpressure).to_string(),
    );
    kv("late_ticks", c(CounterId::RtLateTicks).to_string());
    kv("tick_skew_p99_ns", stats.skew_quantile_ns(0.99).to_string());
    kv(
        "pool_outstanding",
        stats
            .rec
            .gauge(GaugeId::RtPoolOutstanding)
            .current
            .to_string(),
    );
    kv(
        "pool_high_water",
        stats
            .rec
            .gauge(GaugeId::RtPoolHighWater)
            .current
            .to_string(),
    );
    kv("admin_requests", c(CounterId::RtAdminRequests).to_string());
    out
}

fn sanitize_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', " ")
}

/// Render the Prometheus text exposition (format 0.0.4): every telemetry
/// counter and gauge — the runtime loop's recorder plus the sum over all
/// live connections' snapshots — with `# HELP`/`# TYPE` headers from the
/// registry, then the tick-skew and loop-phase summaries, then server
/// meta-series. Metric names are `mptcp_<registry name>`; counters end in
/// `_total`, gauge high-water marks in `_peak`.
pub fn prometheus_text(stats: &RuntimeStats, ctx: &AdminCtx<'_>) -> String {
    let snaps: Vec<TelemetrySnapshot> = ctx.listener.conns.iter().map(|c| c.telemetry()).collect();
    let mut out = String::with_capacity(16 << 10);

    for id in CounterId::ALL {
        let total: u64 = stats.rec.counter(id) + snaps.iter().map(|s| s.counter(id)).sum::<u64>();
        let name = format!("mptcp_{}_total", id.name());
        out.push_str(&format!("# HELP {name} {}\n", sanitize_help(id.help())));
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {total}\n"));
    }
    for id in GaugeId::ALL {
        let current: u64 =
            stats.rec.gauge(id).current + snaps.iter().map(|s| s.gauge(id).current).sum::<u64>();
        let peak: u64 = snaps
            .iter()
            .map(|s| s.gauge(id).max)
            .fold(stats.rec.gauge(id).max, u64::max);
        let name = format!("mptcp_{}", id.name());
        let help = sanitize_help(id.help());
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name} {current}\n"));
        out.push_str(&format!("# HELP {name}_peak high-water mark: {help}\n"));
        out.push_str(&format!("# TYPE {name}_peak gauge\n"));
        out.push_str(&format!("{name}_peak {peak}\n"));
    }

    // Tick-skew summary from the runtime's log histogram.
    let skew = stats.skew_hist();
    out.push_str(
        "# HELP mptcp_loop_tick_skew_ns lateness of timer ticks past their promised deadline\n\
         # TYPE mptcp_loop_tick_skew_ns summary\n",
    );
    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
        out.push_str(&format!(
            "mptcp_loop_tick_skew_ns{{quantile=\"{label}\"}} {}\n",
            skew.quantile(q)
        ));
    }
    out.push_str(&format!(
        "mptcp_loop_tick_skew_ns_sum {}\nmptcp_loop_tick_skew_ns_count {}\n",
        skew.sum(),
        skew.samples()
    ));

    // Loop-phase summaries, one labelled series set per phase.
    if ctx.profiler.enabled() {
        out.push_str(
            "# HELP mptcp_loop_phase_ns time spent per event-loop phase per iteration\n\
             # TYPE mptcp_loop_phase_ns summary\n",
        );
        for phase in Phase::ALL {
            let Some(h) = ctx.profiler.hist(phase) else {
                continue;
            };
            let p = phase.name();
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "mptcp_loop_phase_ns{{phase=\"{p}\",quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!(
                "mptcp_loop_phase_ns_sum{{phase=\"{p}\"}} {}\n\
                 mptcp_loop_phase_ns_count{{phase=\"{p}\"}} {}\n",
                h.sum(),
                h.samples()
            ));
        }
    }

    // Server meta-series.
    let live = ctx
        .listener
        .conns
        .iter()
        .enumerate()
        .filter(|(i, _)| !ctx.reaped.get(*i).copied().unwrap_or(false))
        .count();
    out.push_str(&format!(
        "# HELP mptcp_server_connections connections currently tracked and not reaped\n\
         # TYPE mptcp_server_connections gauge\n\
         mptcp_server_connections {live}\n\
         # HELP mptcp_server_accepted_total connections ever accepted\n\
         # TYPE mptcp_server_accepted_total counter\n\
         mptcp_server_accepted_total {}\n\
         # HELP mptcp_server_served_total connections that finished and closed\n\
         # TYPE mptcp_server_served_total counter\n\
         mptcp_server_served_total {}\n\
         # HELP mptcp_server_rejected_syns_total SYNs refused by the listener\n\
         # TYPE mptcp_server_rejected_syns_total counter\n\
         mptcp_server_rejected_syns_total {}\n\
         # HELP mptcp_server_paths bound UDP paths\n\
         # TYPE mptcp_server_paths gauge\n\
         mptcp_server_paths {}\n",
        ctx.listener.conns.len(),
        ctx.served,
        ctx.listener.rejected_syns,
        ctx.paths.len(),
    ));
    out
}

/// A parsed exposition: series (full name incl. labels) and family types.
#[derive(Debug, Default)]
pub struct Exposition {
    /// `name{labels}` (or bare `name`) -> sample value.
    pub series: BTreeMap<String, f64>,
    /// Metric family name -> declared `# TYPE`.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// Series whose family was declared `counter`.
    pub fn counter_series(&self) -> impl Iterator<Item = (&str, f64)> {
        self.series
            .iter()
            .filter(|(name, _)| {
                let family = name.split('{').next().unwrap_or(name);
                self.types.get(family).map(String::as_str) == Some("counter")
            })
            .map(|(n, &v)| (n.as_str(), v))
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Family a sample belongs to: itself, unless it is the `_sum`/`_count`
/// child of a declared summary/histogram.
fn sample_family<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if matches!(
                types.get(base).map(String::as_str),
                Some("summary" | "histogram")
            ) {
                return base;
            }
        }
    }
    name
}

/// Minimal Prometheus text-format (0.0.4) validator. Checks comment
/// syntax, metric-name syntax, parseable sample values, one `# TYPE` (and
/// at most one `# HELP`) per family, every sample covered by a `# TYPE`,
/// and no duplicate series. Returns the parsed series for cross-scrape
/// checks ([`check_monotone`]).
pub fn validate_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    let mut helps: BTreeMap<String, ()> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in TYPE: {name:?}"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown type {ty:?} for {name}"));
                }
                if exp.types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in HELP: {name:?}"));
                }
                if helps.insert(name.to_string(), ()).is_some() {
                    return Err(format!("line {n}: duplicate HELP for {name}"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name, after) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {n}: sample with no value: {line:?}")),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad metric name: {name:?}"));
        }
        let (labels, value_part) = if let Some(stripped) = after.strip_prefix('{') {
            let Some(close) = stripped.find('}') else {
                return Err(format!("line {n}: unterminated label block"));
            };
            (&stripped[..close], &stripped[close + 1..])
        } else {
            ("", after)
        };
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let Some((k, v)) = pair.split_once('=') else {
                return Err(format!("line {n}: bad label pair {pair:?}"));
            };
            if !valid_metric_name(k) || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                return Err(format!("line {n}: bad label {pair:?}"));
            }
        }
        let mut fields = value_part.split_whitespace();
        let Some(value) = fields.next() else {
            return Err(format!("line {n}: sample with no value: {line:?}"));
        };
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| format!("line {n}: unparseable value {v:?}"))?,
        };
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {n}: unparseable timestamp {ts:?}"))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {n}: trailing garbage: {line:?}"));
        }
        let family = sample_family(name, &exp.types);
        if !exp.types.contains_key(family) {
            return Err(format!("line {n}: sample {name} has no # TYPE declaration"));
        }
        let series = if labels.is_empty() {
            name.to_string()
        } else {
            format!("{name}{{{labels}}}")
        };
        if exp.series.insert(series.clone(), value).is_some() {
            return Err(format!("line {n}: duplicate series {series}"));
        }
    }
    if exp.series.is_empty() {
        return Err("no samples in exposition".to_string());
    }
    Ok(exp)
}

/// Assert every counter series present in `prev` is present in `next`
/// with a value that did not decrease.
pub fn check_monotone(prev: &Exposition, next: &Exposition) -> Result<(), String> {
    for (name, v0) in prev.counter_series() {
        match next.series.get(name) {
            None => return Err(format!("counter {name} disappeared between scrapes")),
            Some(&v1) if v1 < v0 => {
                return Err(format!("counter {name} went backwards: {v0} -> {v1}"))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_minimal_exposition() {
        let text = "# HELP x_total things\n# TYPE x_total counter\nx_total 3\n\
                    # TYPE lat_ns summary\nlat_ns{quantile=\"0.5\"} 10\nlat_ns_sum 20\nlat_ns_count 2\n";
        let exp = validate_exposition(text).expect("valid");
        assert_eq!(exp.series["x_total"], 3.0);
        assert_eq!(exp.series["lat_ns{quantile=\"0.5\"}"], 10.0);
        assert_eq!(exp.types["x_total"], "counter");
        let counters: Vec<_> = exp.counter_series().collect();
        assert_eq!(counters, vec![("x_total", 3.0)]);
    }

    #[test]
    fn validator_rejects_duplicate_series() {
        let text = "# TYPE a gauge\na 1\na 2\n";
        assert!(validate_exposition(text)
            .unwrap_err()
            .contains("duplicate series"));
    }

    #[test]
    fn validator_rejects_untyped_sample() {
        assert!(validate_exposition("mystery 7\n")
            .unwrap_err()
            .contains("no # TYPE"));
    }

    #[test]
    fn validator_rejects_garbage_value() {
        let text = "# TYPE a gauge\na banana\n";
        assert!(validate_exposition(text)
            .unwrap_err()
            .contains("unparseable"));
    }

    #[test]
    fn validator_rejects_duplicate_type() {
        let text = "# TYPE a gauge\n# TYPE a counter\na 1\n";
        assert!(validate_exposition(text)
            .unwrap_err()
            .contains("duplicate TYPE"));
    }

    #[test]
    fn monotone_check_catches_regression() {
        let a = validate_exposition("# TYPE c_total counter\nc_total 5\n").unwrap();
        let b = validate_exposition("# TYPE c_total counter\nc_total 4\n").unwrap();
        assert!(check_monotone(&a, &b).unwrap_err().contains("backwards"));
        assert!(check_monotone(&a, &a).is_ok());
    }

    #[test]
    fn token_parsing() {
        assert_eq!(parse_token("1a2b3c4d"), Some(0x1a2b3c4d));
        assert_eq!(parse_token("0x10"), Some(16));
        assert_eq!(parse_token("zz"), None);
    }
}
