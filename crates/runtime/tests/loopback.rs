//! End-to-end loopback tests: two event loops (one per thread, as two
//! independent runtimes) speaking real MPTCP-over-UDP through the kernel.
//!
//! These are the deployability acceptance tests: the same state machines
//! the simulator exercises must move a checksummed multi-MiB payload over
//! real sockets, across two paths at once, and survive losing one of them
//! mid-transfer.

use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

use mptcp::{FailureDetection, MptcpConfig, TcpConfig};
use mptcp_runtime::{ClientRuntime, ConnApp, FetchClient, FetchServer, LoopConfig, ServerRuntime};
use mptcp_telemetry::CounterId;

const SEED: u64 = 20120425;

fn loopback(n: usize) -> Vec<SocketAddr> {
    (0..n).map(|_| "127.0.0.1:0".parse().unwrap()).collect()
}

/// What the server thread observed, collected after it finishes.
struct ServerReport {
    served: u64,
    subflow_bytes_out: Vec<u64>,
    path_failures: u64,
    reinjections: u64,
}

fn spawn_server(
    cfg: MptcpConfig,
    n_paths: usize,
) -> (Vec<SocketAddr>, thread::JoinHandle<ServerReport>) {
    let mut server = ServerRuntime::bind(
        cfg,
        SEED + 1,
        &loopback(n_paths),
        Box::new(|| Box::new(FetchServer::new())),
        LoopConfig::default(),
    )
    .expect("bind server paths");
    let addrs: Vec<SocketAddr> = (0..n_paths)
        .map(|i| server.local_addr(i).unwrap())
        .collect();
    let handle = thread::spawn(move || {
        let ok = server.run_until_served(1, Duration::from_secs(60)).is_ok();
        let conn = &server.listener().conns[0];
        ServerReport {
            served: if ok { server.served() } else { 0 },
            subflow_bytes_out: conn
                .subflows()
                .iter()
                .map(|s| s.sock.stats.bytes_out)
                .collect(),
            path_failures: conn.stats.path_failures,
            reinjections: conn.stats.reinjections,
        }
    });
    (addrs, handle)
}

#[test]
fn two_path_transfer_is_byte_identical() {
    const SIZE: u64 = 4 * 1024 * 1024;
    let (addrs, server) = spawn_server(MptcpConfig::default(), 2);

    let mut client = ClientRuntime::connect(
        MptcpConfig::default(),
        SEED,
        &loopback(2),
        &addrs,
        FetchClient::new(SIZE, 7),
        LoopConfig::default(),
    )
    .expect("bind client paths");
    client
        .run(Duration::from_secs(60))
        .expect("transfer completes");

    assert!(
        client.app().ok(),
        "payload must verify byte-identical: received {} of {}, mismatch at {:?}",
        client.app().received(),
        SIZE,
        client.app().mismatch_at()
    );

    // Both subflows moved data, on both ends.
    let subs = client.conn().subflows();
    assert_eq!(subs.len(), 2, "MP_JOIN must add the second subflow");
    for (i, s) in subs.iter().enumerate() {
        assert!(
            s.sock.stats.segs_in > 0,
            "client subflow {i} never received a segment"
        );
    }
    let report = server.join().expect("server thread");
    assert_eq!(report.served, 1);
    assert_eq!(report.subflow_bytes_out.len(), 2);
    for (i, &b) in report.subflow_bytes_out.iter().enumerate() {
        assert!(b > 0, "server subflow {i} carried no payload");
    }

    // The loop's own telemetry saw real traffic and no decode errors.
    let rec = &client.stats().rec;
    assert!(rec.counter(CounterId::RtDatagramsRx) > 0);
    assert!(rec.counter(CounterId::RtDatagramsTx) > 0);
    assert_eq!(rec.counter(CounterId::RtDecodeErrors), 0);
}

#[test]
fn transfer_survives_mid_stream_path_blackout() {
    const SIZE: u64 = 3 * 1024 * 1024;
    // Fast failure detection so the test converges in seconds: loopback
    // RTTs are microseconds, so RTO == min_rto and three back-offs take
    // 50+100+200 ms before the path is declared Failed and its in-flight
    // data is reinjected on the survivor.
    let tcp = TcpConfig {
        min_rto: Duration::from_millis(50),
        ..TcpConfig::default()
    };
    let cfg = MptcpConfig::builder()
        .tcp(tcp)
        .failure_detection(FailureDetection {
            suspect_after_rtos: 2,
            fail_after_rtos: 3,
            progress_timeout: Duration::from_millis(800),
            probe_interval: Duration::from_millis(200),
            abort_deadline: Duration::from_secs(30),
        })
        .build()
        .expect("valid config");
    let (addrs, server) = spawn_server(cfg.clone(), 2);

    let mut client = ClientRuntime::connect(
        cfg,
        SEED,
        &loopback(2),
        &addrs,
        FetchClient::new(SIZE, 11),
        LoopConfig::default(),
    )
    .expect("bind client paths");

    // Drive by hand so the blackout lands mid-stream: after the first MiB
    // arrives, path 1 goes dark in both directions at the client.
    let hard = Instant::now() + Duration::from_secs(60);
    let mut blacked_out = false;
    while !client.app().finished() {
        if !blacked_out && client.app().received() > 1024 * 1024 {
            client.block_path(1, true);
            blacked_out = true;
        }
        if !client.step() {
            client.idle_wait();
        }
        assert!(
            client.conn().abort_reason().is_none(),
            "connection must survive a single-path blackout"
        );
        assert!(
            Instant::now() < hard,
            "transfer stalled after blackout: {} of {} received",
            client.app().received(),
            SIZE
        );
    }
    assert!(blacked_out, "transfer finished before the blackout landed");
    assert!(
        client.app().ok(),
        "payload must verify after blackout: received {} of {}, mismatch at {:?}",
        client.app().received(),
        SIZE,
        client.app().mismatch_at()
    );

    // Linger briefly so the server can finish its close handshake.
    let linger = Instant::now() + Duration::from_millis(500);
    while Instant::now() < linger {
        if !client.step() {
            client.idle_wait();
        }
    }

    let report = server.join().expect("server thread");
    assert_eq!(report.served, 1, "server must see the connection complete");
    assert!(
        report.path_failures >= 1,
        "the sender must have declared the blacked-out path Failed"
    );
    assert!(
        report.reinjections > 0,
        "in-flight data from the dead path must have been reinjected"
    );
}
