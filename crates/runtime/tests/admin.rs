//! Admin-plane acceptance tests: the introspection socket is served from
//! the event loop itself, so every test drives `ServerRuntime::step()` by
//! hand on this thread while a non-blocking TCP client plays operator.
//! Covers the stat protocol (including partial writes, unknown commands,
//! and disconnects mid-response), the HTTP `/metrics` endpoint, and the
//! Prometheus exposition contract (validator-clean, no duplicate series,
//! counters monotone across scrapes) while a real transfer is in flight.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use mptcp::MptcpConfig;
use mptcp_runtime::{
    check_monotone, validate_exposition, ClientRuntime, FetchClient, FetchServer, LoopConfig,
    ServerRuntime,
};

const SEED: u64 = 20120425;

fn loopback(n: usize) -> Vec<SocketAddr> {
    (0..n).map(|_| "127.0.0.1:0".parse().unwrap()).collect()
}

fn bind_server(n_paths: usize, profile: bool) -> (ServerRuntime, Vec<SocketAddr>, SocketAddr) {
    let mut server = ServerRuntime::bind(
        MptcpConfig::default(),
        SEED + 1,
        &loopback(n_paths),
        Box::new(|| Box::new(FetchServer::new())),
        LoopConfig {
            profile,
            ..LoopConfig::default()
        },
    )
    .expect("bind server paths");
    let addrs: Vec<SocketAddr> = (0..n_paths)
        .map(|i| server.local_addr(i).unwrap())
        .collect();
    let admin = server
        .enable_admin("127.0.0.1:0".parse().unwrap())
        .expect("bind admin socket");
    (server, addrs, admin)
}

/// Issue one stat-protocol command, stepping the server loop until the
/// `.`-terminated response arrives. Returns the body without terminator.
fn request(server: &mut ServerRuntime, admin: SocketAddr, cmd: &str) -> String {
    let mut stream = TcpStream::connect(admin).expect("connect admin");
    stream.set_nonblocking(true).expect("nonblocking");
    let mut pending = cmd.as_bytes().to_vec();
    pending.push(b'\n');
    let mut off = 0;
    let mut resp = Vec::new();
    let mut tmp = [0u8; 65536];
    let hard = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < hard, "admin request timed out: {cmd}");
        server.step();
        while off < pending.len() {
            match stream.write(&pending[off..]) {
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("admin write failed: {e}"),
            }
        }
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => resp.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("admin read failed: {e}"),
        }
        if resp.ends_with(b"\n.\n") || resp == b".\n" {
            break;
        }
    }
    let text = String::from_utf8(resp).expect("utf8 response");
    text.strip_suffix(".\n").unwrap_or(&text).to_string()
}

#[test]
fn unknown_command_gets_err_and_loop_survives() {
    let (mut server, _addrs, admin) = bind_server(1, false);
    let resp = request(&mut server, admin, "bogus");
    assert!(resp.starts_with("ERR unknown command"), "got: {resp}");
    // The loop is still healthy: a real command works on a new client.
    let health = request(&mut server, admin, "health");
    assert!(health.contains("loop_iterations"), "got: {health}");
    assert!(health.contains("served"));
}

#[test]
fn partial_command_writes_are_reassembled() {
    let (mut server, _addrs, admin) = bind_server(1, false);
    let mut stream = TcpStream::connect(admin).expect("connect");
    stream.set_nonblocking(true).expect("nonblocking");

    // First half of "conns\n", then several loop iterations, then the rest.
    stream.write_all(b"con").expect("write prefix");
    for _ in 0..20 {
        server.step();
    }
    stream.write_all(b"ns\n").expect("write suffix");

    let mut resp = Vec::new();
    let mut tmp = [0u8; 4096];
    let hard = Instant::now() + Duration::from_secs(10);
    while !resp.ends_with(b"\n.\n") {
        assert!(Instant::now() < hard, "no response to reassembled command");
        server.step();
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => resp.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&resp);
    assert!(text.contains("TOKEN"), "conns header missing: {text}");
    assert!(text.contains("(0 connections)"), "got: {text}");
}

#[test]
fn client_disconnect_mid_response_never_stalls_the_loop() {
    let (mut server, _addrs, admin) = bind_server(1, false);
    // Ask for the largest response, then vanish before reading any of it.
    {
        let mut stream = TcpStream::connect(admin).expect("connect");
        stream.write_all(b"metrics\n").expect("write");
        server.step();
    } // dropped here
    for _ in 0..100 {
        server.step();
    }
    // A fresh client still gets served.
    let resp = request(&mut server, admin, "health");
    assert!(resp.contains("loop_iterations"));
}

#[test]
fn http_get_serves_metrics_for_curl() {
    let (mut server, _addrs, admin) = bind_server(1, false);
    let mut stream = TcpStream::connect(admin).expect("connect");
    stream.set_nonblocking(true).expect("nonblocking");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .expect("write request");
    let mut resp = Vec::new();
    let mut tmp = [0u8; 65536];
    let hard = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < hard, "no HTTP response");
        server.step();
        match stream.read(&mut tmp) {
            Ok(0) => break, // server closes after the response
            Ok(n) => resp.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.0 200 OK"), "got: {text}");
    assert!(text.contains("Content-Type: text/plain; version=0.0.4"));
    let body = text.split("\r\n\r\n").nth(1).expect("body");
    let exp = validate_exposition(body).expect("valid exposition");
    assert!(exp.series.contains_key("mptcp_rt_loop_iterations_total"));
}

#[test]
fn admin_answers_mid_transfer_and_counters_are_monotone() {
    const SIZE: u64 = 6 * 1024 * 1024;
    let (mut server, addrs, admin) = bind_server(2, true);

    let addrs_c = addrs.clone();
    let fetcher = thread::spawn(move || {
        let mut client = ClientRuntime::connect(
            MptcpConfig::default(),
            SEED,
            &loopback(2),
            &addrs_c,
            FetchClient::new(SIZE, 7),
            LoopConfig::default(),
        )
        .expect("bind client paths");
        client.run(Duration::from_secs(60)).expect("transfer");
        client.app().ok()
    });

    // Wait for the connection to land.
    let hard = Instant::now() + Duration::from_secs(30);
    while server.accepted() == 0 {
        assert!(Instant::now() < hard, "no connection arrived");
        if !server.step() {
            server.idle_wait();
        }
    }
    let token = server.listener().conns[0].local_token();

    // First scrape: validator-clean, runtime series present.
    let scrape1 = request(&mut server, admin, "metrics");
    let exp1 = validate_exposition(&scrape1).expect("first scrape valid");
    assert!(exp1.series["mptcp_rt_loop_iterations_total"] > 0.0);
    assert!(exp1.series.contains_key("mptcp_rt_pool_outstanding"));
    assert!(exp1.series.contains_key("mptcp_rt_pool_high_water_peak"));
    assert_eq!(exp1.series["mptcp_server_accepted_total"], 1.0);
    // Profiling is on, so phase summaries must be exposed.
    assert!(exp1
        .series
        .contains_key("mptcp_loop_phase_ns_count{phase=\"recv_drain\"}"));

    // ss -M-style views of the live connection.
    let conns = request(&mut server, admin, "conns");
    let tok_hex = format!("{token:08x}");
    assert!(conns.contains(&tok_hex), "token row missing: {conns}");
    let detail = request(&mut server, admin, &format!("conn {tok_hex}"));
    assert!(
        detail.contains("subflow 0:"),
        "subflow dump missing: {detail}"
    );
    assert!(detail.contains("cwnd"), "cwnd missing: {detail}");
    assert!(detail.contains("srtt_us"));
    let missing = request(&mut server, admin, "conn deadbeef");
    assert!(missing.starts_with("ERR no connection"), "got: {missing}");

    let profile = request(&mut server, admin, "profile");
    assert!(profile.contains("recv_drain"), "got: {profile}");
    assert!(profile.contains("poll_encode"));

    let paths = request(&mut server, admin, "paths");
    assert!(paths.contains("PATH"), "got: {paths}");

    // Second scrape: still valid, no counter went backwards.
    let scrape2 = request(&mut server, admin, "metrics");
    let exp2 = validate_exposition(&scrape2).expect("second scrape valid");
    check_monotone(&exp1, &exp2).expect("counters monotone across scrapes");

    // Let the transfer finish and verify it was untouched by the scraping.
    let hard = Instant::now() + Duration::from_secs(60);
    while server.served() == 0 {
        assert!(Instant::now() < hard, "transfer did not complete");
        if !server.step() {
            server.idle_wait();
        }
    }
    assert!(fetcher.join().expect("client thread"), "payload verified");
}
