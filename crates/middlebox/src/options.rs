//! Option-stripping and option-hostile middleboxes.
//!
//! The study found 6% of paths remove new options from SYNs (14% on port
//! 80), and that a path which passes options on the SYN passes them on data
//! too — but MPTCP must survive the pathological cases anyway: options
//! stripped only from the SYN/ACK (client thinks MPTCP is off, server
//! thinks it's on) and options stripped mid-connection after a routing
//! change (§3.3.6 fallback).

use mptcp_netsim::{Dir, MbVerdict, Middlebox, SimRng, SimTime};
use mptcp_packet::{options::kind, TcpOption, TcpSegment};
use mptcp_telemetry::{CounterId, Recorder};

/// Which segments an [`OptionStripper`] mangles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StripMode {
    /// Strip only from SYN segments (the common proxy behaviour): MPTCP is
    /// simply never negotiated.
    SynOnly,
    /// Strip only from non-SYN segments: negotiation succeeds but data
    /// signalling vanishes — the nasty §3.3.6 fallback case.
    DataOnly,
    /// Strip from everything.
    All,
    /// Strip only from SYN/ACKs: creates the client/server disagreement
    /// §3.1 worries about.
    SynAckOnly,
}

/// Removes a configured TCP option kind from segments.
pub struct OptionStripper {
    mode: StripMode,
    kinds: Vec<u8>,
    /// Options removed so far.
    pub stripped: u64,
}

impl OptionStripper {
    /// Strip options of the given kinds.
    pub fn new(mode: StripMode, kinds: Vec<u8>) -> OptionStripper {
        OptionStripper {
            mode,
            kinds,
            stripped: 0,
        }
    }

    /// Strip MPTCP (kind 30) options.
    pub fn mptcp(mode: StripMode) -> OptionStripper {
        OptionStripper::new(mode, vec![kind::MPTCP])
    }

    fn applies(&self, seg: &TcpSegment) -> bool {
        match self.mode {
            StripMode::SynOnly => seg.flags.syn,
            StripMode::DataOnly => !seg.flags.syn,
            StripMode::All => true,
            StripMode::SynAckOnly => seg.flags.syn && seg.flags.ack,
        }
    }
}

fn option_kind(o: &TcpOption) -> u8 {
    match o {
        TcpOption::Mss(_) => kind::MSS,
        TcpOption::WindowScale(_) => kind::WSCALE,
        TcpOption::SackPermitted => kind::SACK_PERMITTED,
        TcpOption::Sack(_) => kind::SACK,
        TcpOption::Timestamps { .. } => kind::TIMESTAMPS,
        TcpOption::Mptcp(_) => kind::MPTCP,
        TcpOption::Unknown { kind, .. } => *kind,
    }
}

impl Middlebox for OptionStripper {
    fn process(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        mut seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        if self.applies(&seg) {
            let before = seg.options.len();
            seg.options
                .retain(|o| !self.kinds.contains(&option_kind(o)));
            self.stripped += (before - seg.options.len()) as u64;
        }
        MbVerdict::pass(seg)
    }

    fn name(&self) -> &'static str {
        "option-stripper"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxOptionStrips, self.stripped);
    }
}

/// Silently drops SYNs that carry one of the configured option kinds —
/// models the handful of hosts/paths that choke on unknown SYN options
/// (15 of the Alexa top 10,000 in [3]).
pub struct SynDropper {
    kinds: Vec<u8>,
    /// SYNs swallowed.
    pub dropped: u64,
}

impl SynDropper {
    /// Drop SYNs carrying any of `kinds`.
    pub fn new(kinds: Vec<u8>) -> SynDropper {
        SynDropper { kinds, dropped: 0 }
    }

    /// Drop SYNs carrying MPTCP options.
    pub fn mptcp() -> SynDropper {
        SynDropper::new(vec![kind::MPTCP])
    }
}

impl Middlebox for SynDropper {
    fn process(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        if seg.flags.syn
            && seg
                .options
                .iter()
                .any(|o| self.kinds.contains(&option_kind(o)))
        {
            self.dropped += 1;
            return MbVerdict::drop();
        }
        MbVerdict::pass(seg)
    }

    fn name(&self) -> &'static str {
        "syn-dropper"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxSegmentDrops, self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{data_seg, syn_seg};
    use mptcp_packet::MptcpOption;

    fn mp_opt() -> TcpOption {
        TcpOption::Mptcp(MptcpOption::MpCapable {
            version: 0,
            checksum_required: true,
            sender_key: 1,
            receiver_key: None,
        })
    }

    #[test]
    fn syn_only_spares_data() {
        let mut mb = OptionStripper::mptcp(StripMode::SynOnly);
        let mut rng = SimRng::new(1);
        let mut syn = syn_seg(1);
        syn.options.push(TcpOption::Mss(1460));
        syn.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn, &mut rng);
        assert!(v.forward[0].mptcp_option().is_none());
        // MSS survives: only the configured kind is stripped.
        assert!(v.forward[0].options.contains(&TcpOption::Mss(1460)));

        let mut data = data_seg(100, b"x");
        data.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data, &mut rng);
        assert!(v.forward[0].mptcp_option().is_some());
        assert_eq!(mb.stripped, 1);
    }

    #[test]
    fn data_only_spares_syn() {
        let mut mb = OptionStripper::mptcp(StripMode::DataOnly);
        let mut rng = SimRng::new(1);
        let mut syn = syn_seg(1);
        syn.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn, &mut rng);
        assert!(v.forward[0].mptcp_option().is_some());
        let mut data = data_seg(2, b"y");
        data.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data, &mut rng);
        assert!(v.forward[0].mptcp_option().is_none());
    }

    #[test]
    fn synack_only_hits_second_handshake_packet() {
        let mut mb = OptionStripper::mptcp(StripMode::SynAckOnly);
        let mut rng = SimRng::new(1);
        let mut syn = syn_seg(1);
        syn.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn, &mut rng);
        assert!(v.forward[0].mptcp_option().is_some());
        let mut synack = syn_seg(9);
        synack.flags.ack = true;
        synack.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Rev, synack, &mut rng);
        assert!(v.forward[0].mptcp_option().is_none());
    }

    #[test]
    fn syn_dropper_swallows_option_syns() {
        let mut mb = SynDropper::mptcp();
        let mut rng = SimRng::new(1);
        let mut syn = syn_seg(1);
        syn.options.push(mp_opt());
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn, &mut rng);
        assert!(v.forward.is_empty());
        assert_eq!(mb.dropped, 1);
        // A plain SYN passes.
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(1), &mut rng);
        assert_eq!(v.forward.len(), 1);
    }
}
