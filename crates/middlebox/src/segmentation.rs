//! Segment splitting (TSO) and coalescing (traffic normalizers).
//!
//! Splitters model TCP Segmentation Offload NICs: the paper tested 12 TSO
//! NICs and all of them copy a TCP option from the large segment onto
//! *every* split segment (§3.3.4) — which is why the DSS mapping must be
//! self-describing (offset + length) rather than per-packet.
//!
//! Coalescers model traffic normalizers [8] that merge contiguous
//! segments. TCP's 40-byte option space can only hold one full DSS
//! mapping, so the merged segment keeps the first and loses the second —
//! the receiver then sees bytes with no mapping and the sender must
//! retransmit them (§3.3.5).

use bytes::Bytes;
use mptcp_netsim::{Dir, Duration, MbVerdict, Middlebox, SimRng, SimTime};
use mptcp_packet::{options, TcpSegment};
use mptcp_telemetry::{CounterId, Recorder};

/// Re-segments large payloads into `mss`-sized pieces, copying options to
/// every piece (TSO behaviour).
pub struct SegmentSplitter {
    mss: usize,
    /// Segments that were split.
    pub splits: u64,
}

impl SegmentSplitter {
    /// Split payloads larger than `mss`.
    pub fn new(mss: usize) -> SegmentSplitter {
        SegmentSplitter { mss, splits: 0 }
    }
}

impl Middlebox for SegmentSplitter {
    fn process(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        if seg.payload.len() <= self.mss {
            return MbVerdict::pass(seg);
        }
        self.splits += 1;
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < seg.payload.len() {
            let take = (seg.payload.len() - off).min(self.mss);
            let mut piece = seg.clone();
            piece.seq = seg.seq + off as u32;
            piece.payload = seg.payload.slice(off..off + take);
            // FIN (if any) belongs to the last piece only.
            piece.flags.fin = seg.flags.fin && off + take == seg.payload.len();
            out.push(piece);
            off += take;
        }
        MbVerdict {
            forward: out,
            backward: Vec::new(),
        }
    }

    fn name(&self) -> &'static str {
        "segment-splitter"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxResegmentations, self.splits);
    }
}

/// Holds one data segment per direction briefly and merges a contiguous
/// successor into it, keeping only the options that still fit (the first
/// segment's). Models a normalizing proxy.
pub struct SegmentCoalescer {
    hold: Duration,
    max_merged: usize,
    held: [Option<(SimTime, TcpSegment)>; 2],
    /// Merges performed.
    pub merges: u64,
}

impl SegmentCoalescer {
    /// Coalesce contiguous segments arriving within `hold` of each other,
    /// up to `max_merged` bytes.
    pub fn new(hold: Duration, max_merged: usize) -> SegmentCoalescer {
        SegmentCoalescer {
            hold,
            max_merged,
            held: [None, None],
            merges: 0,
        }
    }

    fn slot(dir: Dir) -> usize {
        match dir {
            Dir::Fwd => 0,
            Dir::Rev => 1,
        }
    }
}

impl Middlebox for SegmentCoalescer {
    fn process(&mut self, now: SimTime, dir: Dir, seg: TcpSegment, _rng: &mut SimRng) -> MbVerdict {
        let slot = Self::slot(dir);

        // Control segments flush the held data ahead of themselves.
        if seg.payload.is_empty() || seg.flags.syn || seg.flags.rst || seg.flags.fin {
            let mut fwd = Vec::new();
            if let Some((_, held)) = self.held[slot].take() {
                fwd.push(held);
            }
            fwd.push(seg);
            return MbVerdict {
                forward: fwd,
                backward: Vec::new(),
            };
        }

        match self.held[slot].take() {
            None => {
                self.held[slot] = Some((now + self.hold, seg));
                MbVerdict {
                    forward: Vec::new(),
                    backward: Vec::new(),
                }
            }
            Some((deadline, mut held)) => {
                let contiguous = held.seq_end() == seg.seq
                    && held.tuple == seg.tuple
                    && held.payload.len() + seg.payload.len() <= self.max_merged;
                if contiguous {
                    // Merge: keep the held segment's options; the newcomer's
                    // DSS mapping is lost (option space, §3.3.5). Check that
                    // the merged options actually still fit.
                    let mut merged = Vec::with_capacity(held.payload.len() + seg.payload.len());
                    merged.extend_from_slice(&held.payload);
                    merged.extend_from_slice(&seg.payload);
                    held.payload = Bytes::from(merged);
                    held.ack = seg.ack; // latest ack info
                    debug_assert!(options::encode_options(&held.options).is_ok());
                    self.merges += 1;
                    self.held[slot] = Some((deadline, held));
                    MbVerdict {
                        forward: Vec::new(),
                        backward: Vec::new(),
                    }
                } else {
                    // Not mergeable: release the held one, hold the new one.
                    self.held[slot] = Some((now + self.hold, seg));
                    MbVerdict {
                        forward: vec![held],
                        backward: Vec::new(),
                    }
                }
            }
        }
    }

    fn poll(&mut self, now: SimTime) -> Vec<(Dir, TcpSegment)> {
        let mut out = Vec::new();
        for (i, dir) in [(0, Dir::Fwd), (1, Dir::Rev)] {
            if let Some((deadline, _)) = &self.held[i] {
                if *deadline <= now {
                    let (_, seg) = self.held[i].take().unwrap();
                    out.push((dir, seg));
                }
            }
        }
        out
    }

    fn poll_at(&self) -> Option<SimTime> {
        self.held
            .iter()
            .filter_map(|h| h.as_ref().map(|(t, _)| *t))
            .min()
    }

    fn name(&self) -> &'static str {
        "segment-coalescer"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxResegmentations, self.merges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::data_seg;
    use mptcp_packet::{DssMapping, MptcpOption, SeqNum, TcpOption};

    fn dss(dsn: u64, ssn: u32, len: u16) -> TcpOption {
        TcpOption::Mptcp(MptcpOption::Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn,
                subflow_seq: ssn,
                len,
                checksum: None,
            }),
            data_fin: false,
        })
    }

    #[test]
    fn splitter_copies_options_to_all_pieces() {
        let mut mb = SegmentSplitter::new(4);
        let mut rng = SimRng::new(1);
        let mut seg = data_seg(100, b"0123456789");
        seg.options.push(dss(1000, 1, 10));
        let v = mb.process(SimTime::ZERO, Dir::Fwd, seg, &mut rng);
        assert_eq!(v.forward.len(), 3);
        assert_eq!(v.forward[0].seq, SeqNum(100));
        assert_eq!(v.forward[1].seq, SeqNum(104));
        assert_eq!(v.forward[2].seq, SeqNum(108));
        assert_eq!(&v.forward[2].payload[..], b"89");
        // The exact TSO hazard: the same DSS rides on every piece.
        for piece in &v.forward {
            assert_eq!(piece.options, vec![dss(1000, 1, 10)]);
        }
    }

    #[test]
    fn splitter_keeps_fin_on_last_piece() {
        let mut mb = SegmentSplitter::new(4);
        let mut rng = SimRng::new(1);
        let mut seg = data_seg(0, b"abcdefgh");
        seg.flags.fin = true;
        let v = mb.process(SimTime::ZERO, Dir::Fwd, seg, &mut rng);
        assert!(!v.forward[0].flags.fin);
        assert!(v.forward[1].flags.fin);
    }

    #[test]
    fn small_segment_passes_untouched() {
        let mut mb = SegmentSplitter::new(1460);
        let mut rng = SimRng::new(1);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(0, b"tiny"), &mut rng);
        assert_eq!(v.forward.len(), 1);
        assert_eq!(mb.splits, 0);
    }

    #[test]
    fn coalescer_merges_and_drops_second_mapping() {
        let mut mb = SegmentCoalescer::new(Duration::from_millis(1), 3000);
        let mut rng = SimRng::new(1);
        let mut a = data_seg(100, b"aaaa");
        a.options.push(dss(1, 1, 4));
        let mut b = data_seg(104, b"bbbb");
        b.options.push(dss(5, 5, 4));
        let v = mb.process(SimTime::ZERO, Dir::Fwd, a, &mut rng);
        assert!(v.forward.is_empty(), "first is held");
        let v = mb.process(SimTime::ZERO, Dir::Fwd, b, &mut rng);
        assert!(v.forward.is_empty(), "merged and still held");
        assert_eq!(mb.merges, 1);
        // Timer releases the merged segment.
        let t = mb.poll_at().unwrap();
        let rel = mb.poll(t);
        assert_eq!(rel.len(), 1);
        let merged = &rel[0].1;
        assert_eq!(&merged.payload[..], b"aaaabbbb");
        // Only the first mapping survives: 4 of the 8 bytes are unmapped.
        assert_eq!(merged.options, vec![dss(1, 1, 4)]);
    }

    #[test]
    fn coalescer_releases_noncontiguous() {
        let mut mb = SegmentCoalescer::new(Duration::from_millis(1), 3000);
        let mut rng = SimRng::new(1);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"aaaa"), &mut rng);
        assert!(v.forward.is_empty());
        // Gap: the held segment is released, the new one held.
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(200, b"cccc"), &mut rng);
        assert_eq!(v.forward.len(), 1);
        assert_eq!(v.forward[0].seq, SeqNum(100));
    }

    #[test]
    fn coalescer_flushes_before_control_segments() {
        let mut mb = SegmentCoalescer::new(Duration::from_secs(1), 3000);
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"aaaa"), &mut rng);
        let mut fin = data_seg(104, b"");
        fin.flags.fin = true;
        let v = mb.process(SimTime::ZERO, Dir::Fwd, fin, &mut rng);
        assert_eq!(v.forward.len(), 2);
        assert_eq!(v.forward[0].seq, SeqNum(100));
        assert!(v.forward[1].flags.fin);
    }

    #[test]
    fn directions_do_not_interfere() {
        let mut mb = SegmentCoalescer::new(Duration::from_secs(1), 3000);
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"fwd1"), &mut rng);
        let v = mb.process(SimTime::ZERO, Dir::Rev, data_seg(500, b"rev1"), &mut rng);
        assert!(v.forward.is_empty(), "reverse has its own hold slot");
        assert_eq!(mb.poll(SimTime::from_secs(2)).len(), 2);
    }
}
