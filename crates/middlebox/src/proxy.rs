//! Proxy-like behaviours: pro-active ACKing and hole-intolerance.
//!
//! The study's most damning numbers for the strawman design: 26% of paths
//! (33% on port 80) "do not correctly pass on an ACK for data the
//! middlebox has not observed — either the ACK is dropped or it is
//! corrected", and 5% (11% on port 80) "do not pass on data after a hole"
//! (§3.3). Both behaviours are fatal to striping a single sequence space
//! across two paths, and both are modelled here.

use std::collections::HashMap;

use mptcp_netsim::{Dir, MbVerdict, Middlebox, SimRng, SimTime};
use mptcp_packet::{FourTuple, SeqNum, TcpFlags, TcpSegment};
use mptcp_telemetry::{CounterId, Recorder};

/// What to do with an ACK for data this box never saw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnseenAckPolicy {
    /// Forward it unchanged (a transparent path).
    Pass,
    /// Rewrite it down to the highest byte actually observed ("corrected").
    Correct,
    /// Drop it.
    Drop,
}

/// A proxy that may acknowledge data in advance of the receiver and that
/// polices ACKs against the data it has observed.
pub struct ProactiveAcker {
    /// Emit an immediate ACK toward the sender for every data segment.
    pub proactive: bool,
    /// Policy for ACKs covering unobserved data.
    pub unseen_policy: UnseenAckPolicy,
    /// Highest sequence observed per (tuple, direction-of-data).
    seen_high: HashMap<FourTuple, SeqNum>,
    /// Pro-active ACKs generated.
    pub acks_generated: u64,
    /// ACKs corrected or dropped.
    pub acks_policed: u64,
}

impl ProactiveAcker {
    /// New proxy element.
    pub fn new(proactive: bool, unseen_policy: UnseenAckPolicy) -> ProactiveAcker {
        ProactiveAcker {
            proactive,
            unseen_policy,
            seen_high: HashMap::new(),
            acks_generated: 0,
            acks_policed: 0,
        }
    }
}

impl Middlebox for ProactiveAcker {
    fn process(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        let mut backward = Vec::new();

        // Track the data stream and optionally ack it pro-actively.
        if seg.seq_len() > 0 {
            let e = self.seen_high.entry(seg.tuple).or_insert(seg.seq);
            if seg.seq_end().after(*e) {
                *e = seg.seq_end();
            }
            if self.proactive && !seg.payload.is_empty() {
                let mut ack = TcpSegment::new(
                    seg.tuple.reversed(),
                    SeqNum(0),
                    seg.seq_end(),
                    TcpFlags::ACK,
                );
                ack.window = 1 << 20;
                backward.push(ack);
                self.acks_generated += 1;
            }
        }

        // Police the ACK field against the *reverse* direction's stream.
        let mut seg = seg;
        if seg.flags.ack && !seg.flags.syn {
            if let Some(&high) = self.seen_high.get(&seg.tuple.reversed()) {
                if seg.ack.after(high) {
                    self.acks_policed += 1;
                    match self.unseen_policy {
                        UnseenAckPolicy::Pass => {}
                        UnseenAckPolicy::Correct => seg.ack = high,
                        UnseenAckPolicy::Drop => {
                            return MbVerdict {
                                forward: Vec::new(),
                                backward,
                            }
                        }
                    }
                }
            }
        }

        MbVerdict {
            forward: vec![seg],
            backward,
        }
    }

    fn name(&self) -> &'static str {
        "proactive-acker"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxProactiveAcks, self.acks_generated);
    }
}

/// Refuses to forward data beyond a sequence hole: segments after a gap
/// are dropped until the gap is filled.
pub struct HoleDropper {
    expected: HashMap<FourTuple, SeqNum>,
    /// Segments dropped at a hole.
    pub hole_drops: u64,
}

impl HoleDropper {
    /// New hole-intolerant element.
    pub fn new() -> HoleDropper {
        HoleDropper {
            expected: HashMap::new(),
            hole_drops: 0,
        }
    }
}

impl Default for HoleDropper {
    fn default() -> Self {
        Self::new()
    }
}

impl Middlebox for HoleDropper {
    fn process(
        &mut self,
        _now: SimTime,
        _dir: Dir,
        seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        if seg.flags.syn || seg.flags.rst {
            self.expected.insert(seg.tuple, seg.seq_end());
            return MbVerdict::pass(seg);
        }
        if seg.seq_len() == 0 {
            return MbVerdict::pass(seg); // pure ACKs flow freely
        }
        let exp = match self.expected.get(&seg.tuple) {
            Some(e) => *e,
            None => {
                // Unseen flow (e.g. pre-existing): adopt its position.
                self.expected.insert(seg.tuple, seg.seq);
                seg.seq
            }
        };
        if seg.seq.after(exp) {
            self.hole_drops += 1;
            return MbVerdict::drop();
        }
        if seg.seq_end().after(exp) {
            self.expected.insert(seg.tuple, seg.seq_end());
        }
        MbVerdict::pass(seg)
    }

    fn name(&self) -> &'static str {
        "hole-dropper"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxSegmentDrops, self.hole_drops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{data_seg, syn_seg};

    #[test]
    fn proactive_ack_reflected_backward() {
        let mut mb = ProactiveAcker::new(true, UnseenAckPolicy::Pass);
        let mut rng = SimRng::new(1);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        assert_eq!(v.forward.len(), 1);
        assert_eq!(v.backward.len(), 1);
        let ack = &v.backward[0];
        assert_eq!(ack.ack, SeqNum(104));
        assert_eq!(ack.tuple, data_seg(0, b"").tuple.reversed());
    }

    #[test]
    fn ack_for_unseen_data_corrected() {
        // The §3.3 study behaviour that kills single-sequence striping:
        // the client acks data that travelled another path; this box
        // "corrects" the ack down to what it observed.
        let mut mb = ProactiveAcker::new(false, UnseenAckPolicy::Correct);
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.ack = SeqNum(2000); // acks bytes this path never carried
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        assert_eq!(v.forward[0].ack, SeqNum(104));
        assert_eq!(mb.acks_policed, 1);
    }

    #[test]
    fn ack_for_unseen_data_dropped() {
        let mut mb = ProactiveAcker::new(false, UnseenAckPolicy::Drop);
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.ack = SeqNum(2000);
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        assert!(v.forward.is_empty());
    }

    #[test]
    fn in_range_acks_untouched() {
        let mut mb = ProactiveAcker::new(false, UnseenAckPolicy::Correct);
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.ack = SeqNum(102);
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        assert_eq!(v.forward[0].ack, SeqNum(102));
        assert_eq!(mb.acks_policed, 0);
    }

    #[test]
    fn hole_dropper_blocks_after_gap() {
        let mut mb = HoleDropper::new();
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(99), &mut rng);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        assert_eq!(v.forward.len(), 1);
        // Gap: bytes 104..108 missing (went down another path).
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(108, b"efgh"), &mut rng);
        assert!(v.forward.is_empty());
        assert_eq!(mb.hole_drops, 1);
        // Filling the hole unblocks the flow.
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(104, b"wxyz"), &mut rng);
        assert_eq!(v.forward.len(), 1);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(108, b"efgh"), &mut rng);
        assert_eq!(v.forward.len(), 1);
    }

    #[test]
    fn retransmissions_pass_hole_dropper() {
        let mut mb = HoleDropper::new();
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(99), &mut rng);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        // Duplicate/retransmission at or below expected passes.
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"abcd"), &mut rng);
        assert_eq!(v.forward.len(), 1);
    }
}
