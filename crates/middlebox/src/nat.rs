//! Network address translation.
//!
//! The most widespread middlebox: rewrites the client's source endpoint on
//! the way out and the destination endpoint on the way back. The paper's
//! key consequences: the five-tuple cannot identify an MPTCP connection
//! across subflows (§3.2, hence tokens), and data packets not preceded by a
//! SYN are rarely passed (hence full SYN exchanges per subflow — modelled
//! here by dropping unsolicited flows).

use std::collections::HashMap;

use mptcp_netsim::{Dir, MbVerdict, Middlebox, SimRng, SimTime};
use mptcp_packet::{Endpoint, TcpSegment};

/// A NAT with an optional "drop unsolicited data" firewall behaviour.
pub struct Nat {
    public_addr: u32,
    next_port: u16,
    /// private endpoint -> public port.
    out_map: HashMap<Endpoint, u16>,
    /// public port -> private endpoint.
    in_map: HashMap<u16, Endpoint>,
    /// Require a SYN to establish a mapping (true for real NATs): forward
    /// data for unknown flows only if a SYN created state first.
    pub require_syn: bool,
    /// Mappings created (for inspection).
    pub mappings_created: u64,
    /// Segments dropped for lacking a mapping.
    pub unsolicited_drops: u64,
}

impl Nat {
    /// A NAT translating private sources to `public_addr`.
    pub fn new(public_addr: u32) -> Nat {
        Nat {
            public_addr,
            next_port: 40000,
            out_map: HashMap::new(),
            in_map: HashMap::new(),
            require_syn: true,
            mappings_created: 0,
            unsolicited_drops: 0,
        }
    }
}

impl Middlebox for Nat {
    fn process(
        &mut self,
        _now: SimTime,
        dir: Dir,
        mut seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        match dir {
            Dir::Fwd => {
                let private = seg.tuple.src;
                let port = match self.out_map.get(&private) {
                    Some(&p) => p,
                    None => {
                        if self.require_syn && !seg.flags.syn {
                            self.unsolicited_drops += 1;
                            return MbVerdict::drop();
                        }
                        let p = self.next_port;
                        self.next_port = self.next_port.wrapping_add(1);
                        self.out_map.insert(private, p);
                        self.in_map.insert(p, private);
                        self.mappings_created += 1;
                        p
                    }
                };
                seg.tuple.src = Endpoint::new(self.public_addr, port);
                MbVerdict::pass(seg)
            }
            Dir::Rev => {
                let Some(&private) = self.in_map.get(&seg.tuple.dst.port) else {
                    self.unsolicited_drops += 1;
                    return MbVerdict::drop();
                };
                seg.tuple.dst = private;
                MbVerdict::pass(seg)
            }
        }
    }

    fn name(&self) -> &'static str {
        "nat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{data_seg, syn_seg, CLIENT};

    const PUBLIC: u32 = 0xc0a80001;

    #[test]
    fn syn_creates_mapping_and_translates() {
        let mut nat = Nat::new(PUBLIC);
        let mut rng = SimRng::new(1);
        let v = nat.process(SimTime::ZERO, Dir::Fwd, syn_seg(100), &mut rng);
        let out = &v.forward[0];
        assert_eq!(out.tuple.src.addr, PUBLIC);
        assert_ne!(out.tuple.src.port, 4000);
        assert_eq!(nat.mappings_created, 1);
    }

    #[test]
    fn reverse_translation_restores_private() {
        let mut nat = Nat::new(PUBLIC);
        let mut rng = SimRng::new(1);
        let v = nat.process(SimTime::ZERO, Dir::Fwd, syn_seg(100), &mut rng);
        let public_port = v.forward[0].tuple.src.port;
        // Reply comes back addressed to the public endpoint.
        let mut reply = data_seg(500, b"re");
        reply.tuple = reply.tuple.reversed();
        reply.tuple.dst = Endpoint::new(PUBLIC, public_port);
        let v = nat.process(SimTime::ZERO, Dir::Rev, reply, &mut rng);
        assert_eq!(v.forward[0].tuple.dst.addr, CLIENT);
        assert_eq!(v.forward[0].tuple.dst.port, 4000);
    }

    #[test]
    fn unsolicited_data_dropped() {
        // "NATs and Firewalls rarely pass data packets that were not
        // preceded by a SYN" (§3.2) — the strawman's fatal flaw.
        let mut nat = Nat::new(PUBLIC);
        let mut rng = SimRng::new(1);
        let v = nat.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"orphan"), &mut rng);
        assert!(v.forward.is_empty());
        assert_eq!(nat.unsolicited_drops, 1);
    }

    #[test]
    fn unknown_reverse_flow_dropped() {
        let mut nat = Nat::new(PUBLIC);
        let mut rng = SimRng::new(1);
        let mut reply = data_seg(1, b"?");
        reply.tuple.dst = Endpoint::new(PUBLIC, 49999);
        let v = nat.process(SimTime::ZERO, Dir::Rev, reply, &mut rng);
        assert!(v.forward.is_empty());
    }

    #[test]
    fn two_flows_get_distinct_ports() {
        let mut nat = Nat::new(PUBLIC);
        let mut rng = SimRng::new(1);
        let a = nat.process(SimTime::ZERO, Dir::Fwd, syn_seg(1), &mut rng);
        let mut syn2 = syn_seg(1);
        syn2.tuple.src.port = 4001;
        let b = nat.process(SimTime::ZERO, Dir::Fwd, syn2, &mut rng);
        assert_ne!(a.forward[0].tuple.src.port, b.forward[0].tuple.src.port);
    }
}
