//! Application-level gateway: payload modification with seq/ack fix-up.
//!
//! Models FTP-style ALGs in NATs (§3.3.6): the box rewrites an ASCII
//! pattern inside the payload — possibly changing its length — and then
//! adjusts all subsequent sequence numbers (and reverse-path ACKs) so both
//! endpoints see a self-consistent TCP stream. This is the middlebox class
//! that breaks *every* data-mapping scheme and motivated the DSS checksum.

use bytes::Bytes;
use mptcp_netsim::{Dir, MbVerdict, Middlebox, SimRng, SimTime};
use mptcp_packet::{SeqNum, TcpSegment};
use mptcp_telemetry::{CounterId, Recorder};

/// One applied modification, recorded in both coordinate spaces.
#[derive(Clone, Copy, Debug)]
struct Mod {
    /// Position just after the modified region, original sender space.
    orig_pos: SeqNum,
    /// Same position in the modified (receiver-visible) space.
    mod_pos: SeqNum,
    /// Bytes added (negative = removed).
    delta: i32,
}

/// A payload-modifying middlebox acting on forward-direction data.
pub struct PayloadModifier {
    needle: Vec<u8>,
    replacement: Vec<u8>,
    mods: Vec<Mod>,
    /// Payloads rewritten.
    pub rewrites: u64,
}

impl PayloadModifier {
    /// Replace `needle` with `replacement` in forward payloads.
    pub fn new(needle: &[u8], replacement: &[u8]) -> PayloadModifier {
        PayloadModifier {
            needle: needle.to_vec(),
            replacement: replacement.to_vec(),
            mods: Vec::new(),
            rewrites: 0,
        }
    }

    /// Cumulative length delta for original positions at or before `seq`.
    fn delta_at_orig(&self, seq: SeqNum) -> i32 {
        self.mods
            .iter()
            .filter(|m| m.orig_pos.before_eq(seq))
            .map(|m| m.delta)
            .sum()
    }

    /// Cumulative length delta for modified positions at or before `seq`.
    fn delta_at_mod(&self, seq: SeqNum) -> i32 {
        self.mods
            .iter()
            .filter(|m| m.mod_pos.before_eq(seq))
            .map(|m| m.delta)
            .sum()
    }

    fn shift(seq: SeqNum, delta: i32) -> SeqNum {
        SeqNum(seq.0.wrapping_add(delta as u32))
    }
}

impl Middlebox for PayloadModifier {
    fn process(
        &mut self,
        _now: SimTime,
        dir: Dir,
        mut seg: TcpSegment,
        _rng: &mut SimRng,
    ) -> MbVerdict {
        match dir {
            Dir::Fwd => {
                let orig_seq = seg.seq;
                // Shift this segment by modifications before it.
                seg.seq = Self::shift(seg.seq, self.delta_at_orig(orig_seq));

                if !seg.payload.is_empty() && !self.needle.is_empty() {
                    // Has this exact region already been modified (a
                    // retransmission)? Then apply the same rewrite without
                    // recording a new mod.
                    if let Some(pos) = find(&seg.payload, &self.needle) {
                        let hit_end_orig = orig_seq + (pos + self.needle.len()) as u32;
                        let already = self.mods.iter().any(|m| m.orig_pos == hit_end_orig);
                        let mut out = Vec::with_capacity(
                            seg.payload.len() + self.replacement.len()
                                - self.needle.len().min(seg.payload.len()),
                        );
                        out.extend_from_slice(&seg.payload[..pos]);
                        out.extend_from_slice(&self.replacement);
                        out.extend_from_slice(&seg.payload[pos + self.needle.len()..]);
                        seg.payload = Bytes::from(out);
                        self.rewrites += 1;
                        if !already {
                            let delta = self.replacement.len() as i32 - self.needle.len() as i32;
                            let mod_pos = seg.seq + (pos + self.replacement.len()) as u32;
                            self.mods.push(Mod {
                                orig_pos: hit_end_orig,
                                mod_pos,
                                delta,
                            });
                        }
                    }
                }
                // ACK field references the reverse stream, untouched here.
                MbVerdict::pass(seg)
            }
            Dir::Rev => {
                // Reverse ACKs count modified bytes; translate back.
                if seg.flags.ack {
                    let d = self.delta_at_mod(seg.ack);
                    seg.ack = Self::shift(seg.ack, -d);
                }
                MbVerdict::pass(seg)
            }
        }
    }

    fn name(&self) -> &'static str {
        "payload-modifier"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxPayloadMutations, self.rewrites);
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::data_seg;

    #[test]
    fn rewrite_grows_payload_and_shifts_later_segments() {
        // The canonical FTP ALG case: "10.0.0.1" -> "192.168.100.100".
        let mut mb = PayloadModifier::new(b"10.0.0.1", b"192.168.100.100");
        let mut rng = SimRng::new(1);
        let v = mb.process(
            SimTime::ZERO,
            Dir::Fwd,
            data_seg(1000, b"PORT 10.0.0.1\r\n"),
            &mut rng,
        );
        let out = &v.forward[0];
        assert_eq!(&out.payload[..], b"PORT 192.168.100.100\r\n");
        assert_eq!(
            out.seq,
            SeqNum(1000),
            "first modified segment keeps its seq"
        );
        // Original was 15 bytes; modified is 22: delta +7.
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(1015, b"NEXT"), &mut rng);
        assert_eq!(v.forward[0].seq, SeqNum(1022));
    }

    #[test]
    fn reverse_acks_translated_back() {
        let mut mb = PayloadModifier::new(b"abc", b"abcdef");
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"xxabcxx"), &mut rng);
        // Receiver acks the end of the 10-byte modified segment: 100+10.
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.ack = SeqNum(110);
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        // Sender sent 7 bytes: expects ack 107.
        assert_eq!(v.forward[0].ack, SeqNum(107));
    }

    #[test]
    fn acks_before_modification_untouched() {
        let mut mb = PayloadModifier::new(b"abc", b"abcdef");
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"xxabcxx"), &mut rng);
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.ack = SeqNum(101); // before the rewrite point
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        assert_eq!(v.forward[0].ack, SeqNum(101));
    }

    #[test]
    fn retransmission_rewritten_identically() {
        // Footnote 5: proxies re-assert original content on inconsistent
        // retransmission — our ALG applies the same rewrite and does not
        // double-count the delta.
        let mut mb = PayloadModifier::new(b"ab", b"XYZ");
        let mut rng = SimRng::new(1);
        let v1 = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"ab"), &mut rng);
        let v2 = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(100, b"ab"), &mut rng);
        assert_eq!(v1.forward[0].payload, v2.forward[0].payload);
        assert_eq!(v1.forward[0].seq, v2.forward[0].seq);
        assert_eq!(mb.mods.len(), 1);
        // Later data still shifted by exactly one delta (+1).
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(102, b"zz"), &mut rng);
        assert_eq!(v.forward[0].seq, SeqNum(103));
    }

    #[test]
    fn multiple_modifications_accumulate() {
        let mut mb = PayloadModifier::new(b"a", b"AA");
        let mut rng = SimRng::new(1);
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(0, b"xa"), &mut rng); // +1 at 2
        mb.process(SimTime::ZERO, Dir::Fwd, data_seg(2, b"ya"), &mut rng); // +1 at 4
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(4, b"zz"), &mut rng);
        assert_eq!(v.forward[0].seq, SeqNum(6));
        // Ack of everything (modified len 8) maps back to original len 6.
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.ack = SeqNum(8);
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        assert_eq!(v.forward[0].ack, SeqNum(6));
    }

    #[test]
    fn no_match_passes_cleanly() {
        let mut mb = PayloadModifier::new(b"needle", b"JUMBO");
        let mut rng = SimRng::new(1);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data_seg(5, b"haystack"), &mut rng);
        assert_eq!(&v.forward[0].payload[..], b"haystack");
        assert_eq!(v.forward[0].seq, SeqNum(5));
        assert_eq!(mb.rewrites, 0);
    }
}
