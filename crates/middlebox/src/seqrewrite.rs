//! Initial sequence number rewriting.
//!
//! 10% of paths in the study (18% on port 80) rewrite TCP initial sequence
//! numbers — "firewalls that attempt to increase TCP initial sequence
//! number randomization" (§3.3). Each direction gets an independent random
//! offset applied to sequence numbers; acknowledgments (and SACK blocks)
//! travelling the other way are shifted back. Endpoints never notice —
//! unless a protocol assumes the sequence number space is shared across
//! paths, which is exactly why MPTCP's DSS mapping uses *relative* offsets.

use mptcp_netsim::{Dir, MbVerdict, Middlebox, SimRng, SimTime};
use mptcp_packet::{SeqNum, TcpOption, TcpSegment};
use mptcp_telemetry::{CounterId, Recorder};

/// Rewrites ISNs in both directions with random offsets.
pub struct SeqRewriter {
    delta_fwd: Option<u32>,
    delta_rev: Option<u32>,
    /// Number of segments rewritten.
    pub rewritten: u64,
}

impl SeqRewriter {
    /// New rewriter; offsets are chosen when each direction's SYN passes.
    pub fn new() -> SeqRewriter {
        SeqRewriter {
            delta_fwd: None,
            delta_rev: None,
            rewritten: 0,
        }
    }

    fn deltas(&mut self, dir: Dir) -> (u32, u32) {
        // (delta applied to this direction's seq, delta of the opposite
        // direction, subtracted from acks).
        match dir {
            Dir::Fwd => (self.delta_fwd.unwrap_or(0), self.delta_rev.unwrap_or(0)),
            Dir::Rev => (self.delta_rev.unwrap_or(0), self.delta_fwd.unwrap_or(0)),
        }
    }
}

impl Default for SeqRewriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Middlebox for SeqRewriter {
    fn process(
        &mut self,
        _now: SimTime,
        dir: Dir,
        mut seg: TcpSegment,
        rng: &mut SimRng,
    ) -> MbVerdict {
        if seg.flags.syn {
            let slot = match dir {
                Dir::Fwd => &mut self.delta_fwd,
                Dir::Rev => &mut self.delta_rev,
            };
            if slot.is_none() {
                *slot = Some(rng.next_u32());
            }
        }
        let (d_seq, d_ack) = self.deltas(dir);
        seg.seq = SeqNum(seg.seq.0.wrapping_add(d_seq));
        if seg.flags.ack {
            seg.ack = SeqNum(seg.ack.0.wrapping_sub(d_ack));
        }
        for opt in &mut seg.options {
            if let TcpOption::Sack(blocks) = opt {
                for (l, r) in blocks.iter_mut() {
                    *l = l.wrapping_sub(d_ack);
                    *r = r.wrapping_sub(d_ack);
                }
            }
        }
        self.rewritten += 1;
        MbVerdict::pass(seg)
    }

    fn name(&self) -> &'static str {
        "seq-rewriter"
    }

    fn record_telemetry(&self, rec: &mut Recorder) {
        rec.count_n(CounterId::MboxSeqRewrites, self.rewritten);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{data_seg, syn_seg, tuple};
    use mptcp_packet::TcpFlags;

    #[test]
    fn both_directions_shifted_consistently() {
        let mut mb = SeqRewriter::new();
        let mut rng = SimRng::new(99);

        // Client SYN with ISS 1000.
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(1000), &mut rng);
        let syn_out = &v.forward[0];
        let d_fwd = syn_out.seq.0.wrapping_sub(1000);
        assert_ne!(d_fwd, 0);

        // Server SYN/ACK with ISS 5000, acking the *rewritten* client seq+1.
        let mut synack = TcpSegment::new(
            tuple().reversed(),
            SeqNum(5000),
            syn_out.seq + 1,
            TcpFlags::SYN_ACK,
        );
        let v = mb.process(SimTime::ZERO, Dir::Rev, synack.clone(), &mut rng);
        let synack_out = &v.forward[0];
        // The client must see an ack of its ORIGINAL iss+1.
        assert_eq!(synack_out.ack, SeqNum(1001));
        let d_rev = synack_out.seq.0.wrapping_sub(5000);
        assert_ne!(d_rev, 0);

        // Data from the client: seq shifted by d_fwd; ack unshifts d_rev.
        synack.seq = SeqNum(0); // silence unused warnings
        let mut data = data_seg(1001, b"hi");
        data.ack = SeqNum(5001u32.wrapping_add(d_rev));
        let v = mb.process(SimTime::ZERO, Dir::Fwd, data, &mut rng);
        let out = &v.forward[0];
        assert_eq!(out.seq.0, 1001u32.wrapping_add(d_fwd));
        assert_eq!(out.ack, SeqNum(5001));
    }

    #[test]
    fn deltas_stable_across_retransmissions() {
        let mut mb = SeqRewriter::new();
        let mut rng = SimRng::new(3);
        let a = mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(77), &mut rng);
        let b = mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(77), &mut rng);
        assert_eq!(a.forward[0].seq, b.forward[0].seq);
    }

    #[test]
    fn sack_blocks_unshifted() {
        let mut mb = SeqRewriter::new();
        let mut rng = SimRng::new(5);
        let v = mb.process(SimTime::ZERO, Dir::Fwd, syn_seg(0), &mut rng);
        let d_fwd = v.forward[0].seq.0;
        // Receiver SACKs rewritten ranges; the sender must see originals.
        let mut ack = data_seg(0, b"");
        ack.tuple = ack.tuple.reversed();
        ack.options.push(TcpOption::Sack(vec![(
            100u32.wrapping_add(d_fwd),
            200u32.wrapping_add(d_fwd),
        )]));
        let v = mb.process(SimTime::ZERO, Dir::Rev, ack, &mut rng);
        match &v.forward[0].options[0] {
            TcpOption::Sack(blocks) => assert_eq!(blocks[0], (100, 200)),
            other => panic!("unexpected option {other:?}"),
        }
    }
}
