//! Click-style middlebox models (§4.1 of the paper).
//!
//! The paper validated MPTCP against Click elements modelling the
//! middlebox behaviours found in the IMC'11 Internet study [9]:
//!
//! | Element                | Study finding it models                     |
//! |------------------------|---------------------------------------------|
//! | [`Nat`]                | NATs rewrite addresses/ports (ubiquitous)    |
//! | [`SeqRewriter`]        | 10% of paths rewrite initial sequence numbers (18% on port 80) |
//! | [`OptionStripper`]     | 6% of paths remove unknown options from SYNs (14% on port 80); some strip from all packets |
//! | [`SegmentSplitter`]    | TSO NICs / proxies resegment, copying options onto every split |
//! | [`SegmentCoalescer`]   | traffic normalizers coalesce segments, losing one DSS mapping |
//! | [`ProactiveAcker`]     | 26% of paths mangle ACKs for unseen data — proxies that ack in advance |
//! | [`PayloadModifier`]    | application-level gateways rewrite payloads and fix up lengths/seqs |
//! | [`HoleDropper`]        | 5% of paths (11% on port 80) refuse to pass data after a sequence hole |
//! | [`SynDropper`]         | paths that silently drop SYNs carrying unknown options |
//!
//! Each element implements [`mptcp_netsim::Middlebox`] and can be chained
//! onto a [`mptcp_netsim::Path`].

pub mod alg;
pub mod nat;
pub mod options;
pub mod proxy;
pub mod segmentation;
pub mod seqrewrite;

pub use alg::PayloadModifier;
pub use nat::Nat;
pub use options::{OptionStripper, StripMode, SynDropper};
pub use proxy::{HoleDropper, ProactiveAcker};
pub use segmentation::{SegmentCoalescer, SegmentSplitter};
pub use seqrewrite::SeqRewriter;

#[cfg(test)]
pub(crate) mod testutil {
    use bytes::Bytes;
    use mptcp_packet::{Endpoint, FourTuple, SeqNum, TcpFlags, TcpSegment};

    pub const CLIENT: u32 = 0x0a000001;
    pub const SERVER: u32 = 0x0a000002;

    pub fn tuple() -> FourTuple {
        FourTuple {
            src: Endpoint::new(CLIENT, 4000),
            dst: Endpoint::new(SERVER, 80),
        }
    }

    pub fn data_seg(seq: u32, payload: &'static [u8]) -> TcpSegment {
        let mut s = TcpSegment::new(tuple(), SeqNum(seq), SeqNum(1), TcpFlags::ACK);
        s.payload = Bytes::from_static(payload);
        s
    }

    pub fn syn_seg(seq: u32) -> TcpSegment {
        TcpSegment::new(tuple(), SeqNum(seq), SeqNum(0), TcpFlags::SYN)
    }
}
