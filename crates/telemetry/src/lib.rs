//! Telemetry substrate for the MPTCP stack.
//!
//! The paper's evaluation hinges on *why* throughput moved: which of the
//! M1-M4 mechanisms fired, whether a connection fell back to regular TCP
//! (and what middlebox behaviour caused it), and how deep the receive-side
//! reorder structures grew. This crate gives every layer a uniform way to
//! record those internals without pulling in dependencies or wall-clock
//! time: a [`Recorder`] holds fixed-size counter and gauge arrays plus a
//! bounded [`EventRing`], all timestamped by the caller from the simulated
//! clock. A [`TelemetrySnapshot`] is a cheap, immutable copy that renders
//! itself as JSON (for harness reports) or a text table (for the repro
//! binary).
//!
//! Design constraints:
//! - no `std::time` anywhere: timestamps are caller-supplied sim-clock
//!   nanoseconds, so runs stay deterministic;
//! - zero dependencies: JSON and table output are hand-rolled;
//! - bounded memory: the event ring drops the oldest events past its
//!   capacity and reports how many were dropped, so long runs can't bloat.

mod hist;
mod trace;

pub use hist::LogHistogram;
pub use trace::{
    TraceConfig, TraceRecord, TraceSnapshot, TraceWriter, Tracer, DEFAULT_SAMPLE_INTERVAL_NS,
    DEFAULT_TRACE_CAPACITY, SPAN_CONN_LEVEL,
};

/// Monotone counters, one slot per variant, held in a fixed array inside
/// [`Recorder`]. Grouped by the layer that increments them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CounterId {
    // -- core::conn: the paper's M1-M4 mechanisms --------------------------
    /// M1: segments opportunistically re-injected on another subflow.
    M1Reinjections,
    /// M2: times a slow subflow's cwnd was halved to unclog the send window.
    M2Penalizations,
    /// M3: receive/send buffer autotune growth steps.
    M3BufferGrowths,
    /// M4: times a subflow cwnd was capped to bound bufferbloat.
    M4CwndCaps,
    // -- core::conn: data-level machinery ----------------------------------
    /// Segments handed to a subflow by the scheduler.
    SchedulerPicks,
    /// Times the scheduler found every subflow blocked (no cwnd/rwnd room).
    SchedulerStalls,
    /// Times the scheduler deliberately waited for a faster path (BLEST).
    SchedulerDefers,
    /// Data-level retransmissions triggered by the data-level RTO.
    DataRtos,
    /// Progress stalls observed at DATA_ACK level (snd_una unmoved too long).
    DataAckStalls,
    /// Duplicate data bytes discarded at the connection-level receiver.
    DupDataBytes,
    // -- core::conn: fallback (§3.3.6) and handshake rejections -------------
    /// DSS checksum verification failures.
    ChecksumFailures,
    /// Connections that fell back to regular TCP, by cause (see events too).
    Fallbacks,
    /// MP_JOIN attempts rejected (bad HMAC, unknown token, limit, state).
    JoinsRejected,
    /// Subflows torn down with RST while the connection survived.
    SubflowResets,
    // -- core::conn: path management (§3.2, §3.4) ----------------------------
    /// ADD_ADDR advertisements sent to the peer.
    AddAddrsSent,
    /// ADD_ADDR advertisements received from the peer.
    AddAddrsReceived,
    /// REMOVE_ADDR withdrawals sent to the peer.
    RemoveAddrsSent,
    /// REMOVE_ADDR withdrawals received from the peer.
    RemoveAddrsReceived,
    /// REMOVE_ADDR withdrawals rejected: the addr_id was never advertised
    /// and no subflow uses it.
    RemoveAddrUnknown,
    /// ADD_ADDR advertisements retransmitted (unechoed past the interval).
    AddAddrRetransmits,
    /// Subflows opened by a path-manager decision.
    PmSubflowsOpened,
    /// Backup subflows promoted to regular priority by the path manager.
    PmBackupPromotions,
    // -- core::conn: path-failure detection and recovery ---------------------
    /// Subflows demoted Active -> Suspect (consecutive RTOs / no progress).
    PathSuspects,
    /// Subflows declared Failed (in-flight data reinjected elsewhere).
    PathFailures,
    /// Suspect/Failed subflows that resumed progress and returned to Active.
    PathRecoveries,
    /// Connections aborted (all paths failed past the deadline, last
    /// subflow removed, FastClose...).
    ConnAborts,
    // -- core::reorder -------------------------------------------------------
    /// Segments inserted into the out-of-order queue.
    ReorderInserts,
    /// Pointer/node visits performed by the reorder algorithm.
    ReorderOps,
    /// Inserts satisfied by a shortcut (Shortcuts/AllShortcuts algorithms).
    ReorderShortcutHits,
    // -- tcpstack: per-subflow TCP internals --------------------------------
    /// Retransmission timer fires.
    TcpRtos,
    /// Fast retransmits (triple-dup-ACK).
    TcpFastRetransmits,
    /// Segments retransmitted (either path).
    TcpRetransmittedSegs,
    /// Zero-window probes sent.
    TcpZeroWindowProbes,
    // -- netsim / middlebox --------------------------------------------------
    /// Packets dropped by a full link queue.
    LinkQueueDrops,
    /// Packets dropped by configured random loss.
    LinkRandomDrops,
    /// TCP options removed by a middlebox.
    MboxOptionStrips,
    /// Payload bytes rewritten by a middlebox (e.g. ALG "fixups").
    MboxPayloadMutations,
    /// Segments split or coalesced by a middlebox/segmentation offload.
    MboxResegmentations,
    /// ACKs manufactured by a proactive-ACKing middlebox.
    MboxProactiveAcks,
    /// Sequence numbers rewritten by a randomizing middlebox.
    MboxSeqRewrites,
    /// Segments swallowed outright by a middlebox (hole droppers,
    /// option-sensitive SYN droppers).
    MboxSegmentDrops,
    /// Scheduled fault events applied by the simulator's fault schedule.
    FaultsInjected,
    /// Packets silently discarded because a fault forced the link down.
    LinkFaultDrops,
    // -- runtime: real-I/O event loop (crates/runtime) -----------------------
    /// Event-loop iterations executed.
    RtLoopIterations,
    /// recv-drain rounds that harvested at least one datagram (one batch of
    /// recv syscalls).
    RtRecvBatches,
    /// egress-flush rounds that pushed at least one datagram to a socket
    /// (one batch of send syscalls).
    RtSendBatches,
    /// UDP datagrams received and decoded into segments.
    RtDatagramsRx,
    /// UDP datagrams encoded and handed to the kernel.
    RtDatagramsTx,
    /// Inbound datagrams rejected by framing/decode/TCP-checksum checks.
    RtDecodeErrors,
    /// Times a connection's output poll was skipped because its bounded
    /// egress queue was full (backpressure applied).
    RtEgressBackpressure,
    /// Timer deadlines that were processed after they had already expired
    /// (wall-clock jitter; skew tracked by the `rt_tick_skew_ns` gauge).
    RtLateTicks,
    /// Egress buffer-pool checkouts satisfied by a recycled buffer.
    RtPoolHits,
    /// Egress buffer-pool checkouts that had to allocate a fresh buffer
    /// (pool cold, or every pooled buffer still pinned by a live view).
    RtPoolMisses,
    /// Admin-socket commands served (stat protocol lines + HTTP scrapes).
    RtAdminRequests,
}

impl CounterId {
    /// Every variant, in declaration order (the array layout).
    pub const ALL: [CounterId; NUM_COUNTERS] = [
        CounterId::M1Reinjections,
        CounterId::M2Penalizations,
        CounterId::M3BufferGrowths,
        CounterId::M4CwndCaps,
        CounterId::SchedulerPicks,
        CounterId::SchedulerStalls,
        CounterId::SchedulerDefers,
        CounterId::DataRtos,
        CounterId::DataAckStalls,
        CounterId::DupDataBytes,
        CounterId::ChecksumFailures,
        CounterId::Fallbacks,
        CounterId::JoinsRejected,
        CounterId::SubflowResets,
        CounterId::AddAddrsSent,
        CounterId::AddAddrsReceived,
        CounterId::RemoveAddrsSent,
        CounterId::RemoveAddrsReceived,
        CounterId::RemoveAddrUnknown,
        CounterId::AddAddrRetransmits,
        CounterId::PmSubflowsOpened,
        CounterId::PmBackupPromotions,
        CounterId::PathSuspects,
        CounterId::PathFailures,
        CounterId::PathRecoveries,
        CounterId::ConnAborts,
        CounterId::ReorderInserts,
        CounterId::ReorderOps,
        CounterId::ReorderShortcutHits,
        CounterId::TcpRtos,
        CounterId::TcpFastRetransmits,
        CounterId::TcpRetransmittedSegs,
        CounterId::TcpZeroWindowProbes,
        CounterId::LinkQueueDrops,
        CounterId::LinkRandomDrops,
        CounterId::MboxOptionStrips,
        CounterId::MboxPayloadMutations,
        CounterId::MboxResegmentations,
        CounterId::MboxProactiveAcks,
        CounterId::MboxSeqRewrites,
        CounterId::MboxSegmentDrops,
        CounterId::FaultsInjected,
        CounterId::LinkFaultDrops,
        CounterId::RtLoopIterations,
        CounterId::RtRecvBatches,
        CounterId::RtSendBatches,
        CounterId::RtDatagramsRx,
        CounterId::RtDatagramsTx,
        CounterId::RtDecodeErrors,
        CounterId::RtEgressBackpressure,
        CounterId::RtLateTicks,
        CounterId::RtPoolHits,
        CounterId::RtPoolMisses,
        CounterId::RtAdminRequests,
    ];

    /// Stable snake_case name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::M1Reinjections => "m1_reinjections",
            CounterId::M2Penalizations => "m2_penalizations",
            CounterId::M3BufferGrowths => "m3_buffer_growths",
            CounterId::M4CwndCaps => "m4_cwnd_caps",
            CounterId::SchedulerPicks => "scheduler_picks",
            CounterId::SchedulerStalls => "scheduler_stalls",
            CounterId::SchedulerDefers => "scheduler_defers",
            CounterId::DataRtos => "data_rtos",
            CounterId::DataAckStalls => "data_ack_stalls",
            CounterId::DupDataBytes => "dup_data_bytes",
            CounterId::ChecksumFailures => "checksum_failures",
            CounterId::Fallbacks => "fallbacks",
            CounterId::JoinsRejected => "joins_rejected",
            CounterId::SubflowResets => "subflow_resets",
            CounterId::AddAddrsSent => "add_addrs_sent",
            CounterId::AddAddrsReceived => "add_addrs_received",
            CounterId::RemoveAddrsSent => "remove_addrs_sent",
            CounterId::RemoveAddrsReceived => "remove_addrs_received",
            CounterId::RemoveAddrUnknown => "remove_addr_unknown",
            CounterId::AddAddrRetransmits => "add_addr_retransmits",
            CounterId::PmSubflowsOpened => "pm_subflows_opened",
            CounterId::PmBackupPromotions => "pm_backup_promotions",
            CounterId::PathSuspects => "path_suspects",
            CounterId::PathFailures => "path_failures",
            CounterId::PathRecoveries => "path_recoveries",
            CounterId::ConnAborts => "conn_aborts",
            CounterId::ReorderInserts => "reorder_inserts",
            CounterId::ReorderOps => "reorder_ops",
            CounterId::ReorderShortcutHits => "reorder_shortcut_hits",
            CounterId::TcpRtos => "tcp_rtos",
            CounterId::TcpFastRetransmits => "tcp_fast_retransmits",
            CounterId::TcpRetransmittedSegs => "tcp_retransmitted_segs",
            CounterId::TcpZeroWindowProbes => "tcp_zero_window_probes",
            CounterId::LinkQueueDrops => "link_queue_drops",
            CounterId::LinkRandomDrops => "link_random_drops",
            CounterId::MboxOptionStrips => "mbox_option_strips",
            CounterId::MboxPayloadMutations => "mbox_payload_mutations",
            CounterId::MboxResegmentations => "mbox_resegmentations",
            CounterId::MboxProactiveAcks => "mbox_proactive_acks",
            CounterId::MboxSeqRewrites => "mbox_seq_rewrites",
            CounterId::MboxSegmentDrops => "mbox_segment_drops",
            CounterId::FaultsInjected => "faults_injected",
            CounterId::LinkFaultDrops => "link_fault_drops",
            CounterId::RtLoopIterations => "rt_loop_iterations",
            CounterId::RtRecvBatches => "rt_recv_batches",
            CounterId::RtSendBatches => "rt_send_batches",
            CounterId::RtDatagramsRx => "rt_datagrams_rx",
            CounterId::RtDatagramsTx => "rt_datagrams_tx",
            CounterId::RtDecodeErrors => "rt_decode_errors",
            CounterId::RtEgressBackpressure => "rt_egress_backpressure",
            CounterId::RtLateTicks => "rt_late_ticks",
            CounterId::RtPoolHits => "rt_pool_hits",
            CounterId::RtPoolMisses => "rt_pool_misses",
            CounterId::RtAdminRequests => "rt_admin_requests",
        }
    }

    /// One-line human description, used as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            CounterId::M1Reinjections => "M1 opportunistic reinjections onto another subflow",
            CounterId::M2Penalizations => "M2 slow-subflow cwnd penalizations",
            CounterId::M3BufferGrowths => "M3 receive/send buffer autotune growth steps",
            CounterId::M4CwndCaps => "M4 subflow cwnd caps applied to bound bufferbloat",
            CounterId::SchedulerPicks => "segments handed to a subflow by the scheduler",
            CounterId::SchedulerStalls => "times the scheduler found every subflow blocked",
            CounterId::SchedulerDefers => "times the scheduler waited for a faster path (BLEST)",
            CounterId::DataRtos => "data-level retransmission timeouts",
            CounterId::DataAckStalls => "DATA_ACK-level progress stalls",
            CounterId::DupDataBytes => "duplicate data bytes discarded by the receiver",
            CounterId::ChecksumFailures => "DSS checksum verification failures",
            CounterId::Fallbacks => "connections that fell back to regular TCP",
            CounterId::JoinsRejected => "MP_JOIN attempts rejected",
            CounterId::SubflowResets => "subflows reset while the connection survived",
            CounterId::AddAddrsSent => "ADD_ADDR advertisements sent",
            CounterId::AddAddrsReceived => "ADD_ADDR advertisements received",
            CounterId::RemoveAddrsSent => "REMOVE_ADDR withdrawals sent",
            CounterId::RemoveAddrsReceived => "REMOVE_ADDR withdrawals received",
            CounterId::RemoveAddrUnknown => "REMOVE_ADDR withdrawals rejected for unknown addr_id",
            CounterId::AddAddrRetransmits => "ADD_ADDR advertisements retransmitted until echoed",
            CounterId::PmSubflowsOpened => "subflows opened by a path-manager decision",
            CounterId::PmBackupPromotions => "backup subflows promoted by the path manager",
            CounterId::PathSuspects => "subflows demoted Active to Suspect",
            CounterId::PathFailures => "subflows declared Failed",
            CounterId::PathRecoveries => "subflows recovered back to Active",
            CounterId::ConnAborts => "connections aborted",
            CounterId::ReorderInserts => "segments inserted into the out-of-order queue",
            CounterId::ReorderOps => "pointer visits performed by the reorder algorithm",
            CounterId::ReorderShortcutHits => "reorder inserts satisfied by a shortcut",
            CounterId::TcpRtos => "subflow TCP retransmission timer fires",
            CounterId::TcpFastRetransmits => "subflow TCP fast retransmits",
            CounterId::TcpRetransmittedSegs => "subflow TCP segments retransmitted",
            CounterId::TcpZeroWindowProbes => "subflow TCP zero-window probes sent",
            CounterId::LinkQueueDrops => "packets dropped by a full simulated link queue",
            CounterId::LinkRandomDrops => "packets dropped by configured random loss",
            CounterId::MboxOptionStrips => "TCP options removed by a middlebox",
            CounterId::MboxPayloadMutations => "payload bytes rewritten by a middlebox",
            CounterId::MboxResegmentations => "segments split or coalesced by a middlebox",
            CounterId::MboxProactiveAcks => "ACKs manufactured by a proactive-ACKing middlebox",
            CounterId::MboxSeqRewrites => "sequence numbers rewritten by a middlebox",
            CounterId::MboxSegmentDrops => "segments swallowed outright by a middlebox",
            CounterId::FaultsInjected => "scheduled fault events applied by the simulator",
            CounterId::LinkFaultDrops => "packets discarded by a fault-forced link outage",
            CounterId::RtLoopIterations => "event-loop iterations executed",
            CounterId::RtRecvBatches => "recv-drain rounds that harvested at least one datagram",
            CounterId::RtSendBatches => "egress-flush rounds that pushed at least one datagram",
            CounterId::RtDatagramsRx => "UDP datagrams received and decoded",
            CounterId::RtDatagramsTx => "UDP datagrams handed to the kernel",
            CounterId::RtDecodeErrors => "inbound datagrams rejected by framing or checksum checks",
            CounterId::RtEgressBackpressure => "polls skipped because the egress queue was full",
            CounterId::RtLateTicks => "timer deadlines processed after they expired",
            CounterId::RtPoolHits => "buffer-pool checkouts satisfied by a recycled buffer",
            CounterId::RtPoolMisses => "buffer-pool checkouts that allocated a fresh buffer",
            CounterId::RtAdminRequests => "admin-socket commands served",
        }
    }
}

/// Number of counter slots in a [`Recorder`].
pub const NUM_COUNTERS: usize = 54;

/// Instantaneous values tracked with a high-water mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum GaugeId {
    /// Out-of-order queue depth, in segments.
    OfoQueueSegs,
    /// Out-of-order queue occupancy, in bytes.
    OfoQueueBytes,
    /// Connection-level send buffer capacity (M3 grows this).
    SndBufCap,
    /// Connection-level receive buffer capacity (M3 grows this).
    RcvBufCap,
    /// Established subflows.
    Subflows,
    /// Bytes queued at the connection level awaiting scheduling.
    SendQueueBytes,
    /// Runtime egress queue depth, in segments (`max` is the high-water
    /// mark the backpressure bound was sized against).
    RtEgressQueueDepth,
    /// Wall-clock lateness of the most recent timer tick, in nanoseconds
    /// (`max` is the worst skew observed; see the `rt_late_ticks` counter).
    RtTickSkewNs,
    /// Egress buffer-pool buffers currently checked out.
    RtPoolOutstanding,
    /// Egress buffer-pool peak working set (the pool's own atomically
    /// tracked high-water mark, exact even between sync points).
    RtPoolHighWater,
}

impl GaugeId {
    /// Every variant, in declaration order (the array layout).
    pub const ALL: [GaugeId; NUM_GAUGES] = [
        GaugeId::OfoQueueSegs,
        GaugeId::OfoQueueBytes,
        GaugeId::SndBufCap,
        GaugeId::RcvBufCap,
        GaugeId::Subflows,
        GaugeId::SendQueueBytes,
        GaugeId::RtEgressQueueDepth,
        GaugeId::RtTickSkewNs,
        GaugeId::RtPoolOutstanding,
        GaugeId::RtPoolHighWater,
    ];

    /// Stable snake_case name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::OfoQueueSegs => "ofo_queue_segs",
            GaugeId::OfoQueueBytes => "ofo_queue_bytes",
            GaugeId::SndBufCap => "snd_buf_cap",
            GaugeId::RcvBufCap => "rcv_buf_cap",
            GaugeId::Subflows => "subflows",
            GaugeId::SendQueueBytes => "send_queue_bytes",
            GaugeId::RtEgressQueueDepth => "rt_egress_queue_depth",
            GaugeId::RtTickSkewNs => "rt_tick_skew_ns",
            GaugeId::RtPoolOutstanding => "rt_pool_outstanding",
            GaugeId::RtPoolHighWater => "rt_pool_high_water",
        }
    }

    /// One-line human description, used as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            GaugeId::OfoQueueSegs => "out-of-order queue depth in segments",
            GaugeId::OfoQueueBytes => "out-of-order queue occupancy in bytes",
            GaugeId::SndBufCap => "connection-level send buffer capacity in bytes",
            GaugeId::RcvBufCap => "connection-level receive buffer capacity in bytes",
            GaugeId::Subflows => "established subflows",
            GaugeId::SendQueueBytes => "bytes queued awaiting scheduling",
            GaugeId::RtEgressQueueDepth => "runtime egress queue depth in segments",
            GaugeId::RtTickSkewNs => "lateness of the most recent timer tick in nanoseconds",
            GaugeId::RtPoolOutstanding => "buffer-pool buffers currently checked out",
            GaugeId::RtPoolHighWater => "buffer-pool peak working set",
        }
    }
}

/// Number of gauge slots in a [`Recorder`].
pub const NUM_GAUGES: usize = 10;

/// Current value plus high-water mark for one gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently set value.
    pub current: u64,
    /// Largest value ever set.
    pub max: u64,
}

/// Why a connection abandoned MPTCP signalling and fell back to plain TCP
/// (paper §3.3.6), or refused to start it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackCause {
    /// A DSS checksum failed: a middlebox rewrote the payload under us.
    ChecksumFail,
    /// MPTCP options were stripped by a middlebox (SYN or data path).
    OptionStripped,
    /// Data arrived with no covering DSS mapping: payload was altered
    /// or re-segmented in a way the mappings cannot describe.
    PayloadMutation,
    /// The data-level RTO fired with the mapping never confirmed; the
    /// path is presumed MPTCP-hostile.
    DataRtoUnconfirmed,
    /// The peer sent MP_FAIL.
    MpFail,
}

impl FallbackCause {
    /// Stable snake_case name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            FallbackCause::ChecksumFail => "checksum_fail",
            FallbackCause::OptionStripped => "option_stripped",
            FallbackCause::PayloadMutation => "payload_mutation",
            FallbackCause::DataRtoUnconfirmed => "data_rto_unconfirmed",
            FallbackCause::MpFail => "mp_fail",
        }
    }
}

/// One recorded occurrence. The numeric payloads are variant-specific and
/// documented per variant; keeping them as plain integers keeps `Event`
/// `Copy` and the ring allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// M1: `dsn` re-injected from subflow `from` onto subflow `to`.
    M1Reinject { dsn: u64, from: u32, to: u32 },
    /// M2: subflow `subflow` penalized, cwnd `before` -> `after` bytes.
    M2Penalize {
        subflow: u32,
        before: u32,
        after: u32,
    },
    /// M3: buffers grown to `snd_cap`/`rcv_cap` bytes.
    M3Grow { snd_cap: u64, rcv_cap: u64 },
    /// M4: subflow `subflow` cwnd capped at `cap` bytes.
    M4Cap { subflow: u32, cap: u32 },
    /// Fell back to regular TCP.
    Fallback { cause: FallbackCause },
    /// DSS checksum failed on subflow `subflow` covering `dsn`.
    ChecksumFail { subflow: u32, dsn: u64 },
    /// Data-level RTO fired; `dsn` is the oldest unacked mapping.
    DataRto { dsn: u64 },
    /// DATA_ACK progress stalled at `dsn` for `stalled_ns`.
    DataAckStall { dsn: u64, stalled_ns: u64 },
    /// MP_JOIN rejected (see `JoinsRejected`); `token` is the peer's.
    JoinRejected { token: u32 },
    /// Subflow `subflow` reset while the connection survived.
    SubflowReset { subflow: u32 },
    /// Reorder queue reached a new high-water mark of `segs`/`bytes`.
    ReorderHighWater { segs: u64, bytes: u64 },
    /// Subflow-level RTO on subflow `subflow`, `backoff` doublings deep.
    TcpRto { subflow: u32, backoff: u32 },
    /// Subflow-level fast retransmit of `seq` on subflow `subflow`.
    TcpFastRetransmit { subflow: u32, seq: u32 },
    /// ADD_ADDR: address `addr` with identifier `id` advertised.
    /// `sent` is 1 when we advertised, 0 when the peer did.
    AddAddr { addr: u32, id: u32, sent: u32 },
    /// REMOVE_ADDR: address identifier `id` withdrawn.
    /// `sent` is 1 when we withdrew, 0 when the peer did.
    RemoveAddr { id: u32, sent: u32 },
    /// REMOVE_ADDR for an unknown address identifier `id` was rejected.
    RemoveAddrUnknown { id: u32 },
    /// The path manager opened a subflow `local` -> `remote`
    /// (`backup` is 1 for backup-priority joins).
    PmOpenSubflow {
        local: u32,
        remote: u32,
        backup: u32,
    },
    /// The path manager advertised local address `addr` as `id`.
    PmAdvertise { addr: u32, id: u32 },
    /// The path manager promoted backup subflow `subflow` to regular
    /// priority (MP_PRIO sent to the peer).
    PmBackupPromoted { subflow: u32 },
    /// The scheduler entered a stall: work was queued but no subflow had
    /// cwnd or send-buffer headroom. Recorded on the transition only.
    SchedulerStall {
        pending_bytes: u64,
        reinject_queued: u64,
    },
    /// Subflow `subflow` demoted Active -> Suspect after `rtos` consecutive
    /// RTOs (or a no-progress timeout when `rtos` is 0).
    PathSuspect { subflow: u32, rtos: u32 },
    /// Subflow `subflow` declared Failed; `reinjected` in-flight DSN chunks
    /// were queued for delivery on surviving subflows.
    PathFailed { subflow: u32, reinjected: u64 },
    /// Subflow `subflow` resumed DATA_ACK progress and returned to Active.
    PathRecovered { subflow: u32 },
    /// The fault schedule took simulator path `path` down (blackout or
    /// silent blackhole).
    BlackoutInjected { path: u32 },
    /// The connection aborted; `code` is the `AbortReason` discriminant
    /// (0 = all paths failed, 1 = last subflow removed, 2 = peer FastClose).
    ConnAborted { code: u32 },
}

impl EventKind {
    /// Stable snake_case name used in JSON and table output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::M1Reinject { .. } => "m1_reinject",
            EventKind::M2Penalize { .. } => "m2_penalize",
            EventKind::M3Grow { .. } => "m3_grow",
            EventKind::M4Cap { .. } => "m4_cap",
            EventKind::Fallback { .. } => "fallback",
            EventKind::ChecksumFail { .. } => "checksum_fail",
            EventKind::DataRto { .. } => "data_rto",
            EventKind::DataAckStall { .. } => "data_ack_stall",
            EventKind::JoinRejected { .. } => "join_rejected",
            EventKind::SubflowReset { .. } => "subflow_reset",
            EventKind::ReorderHighWater { .. } => "reorder_high_water",
            EventKind::TcpRto { .. } => "tcp_rto",
            EventKind::TcpFastRetransmit { .. } => "tcp_fast_retransmit",
            EventKind::AddAddr { .. } => "add_addr",
            EventKind::RemoveAddr { .. } => "remove_addr",
            EventKind::RemoveAddrUnknown { .. } => "remove_addr_unknown",
            EventKind::PmOpenSubflow { .. } => "pm_open_subflow",
            EventKind::PmAdvertise { .. } => "pm_advertise",
            EventKind::PmBackupPromoted { .. } => "pm_backup_promoted",
            EventKind::SchedulerStall { .. } => "scheduler_stall",
            EventKind::PathSuspect { .. } => "path_suspect",
            EventKind::PathFailed { .. } => "path_failed",
            EventKind::PathRecovered { .. } => "path_recovered",
            EventKind::BlackoutInjected { .. } => "blackout_injected",
            EventKind::ConnAborted { .. } => "conn_aborted",
        }
    }

    /// Variant payload as `(name, value)` pairs for serialization.
    pub(crate) fn fields(self) -> Vec<(&'static str, u64)> {
        match self {
            EventKind::M1Reinject { dsn, from, to } => {
                vec![("dsn", dsn), ("from", from as u64), ("to", to as u64)]
            }
            EventKind::M2Penalize {
                subflow,
                before,
                after,
            } => vec![
                ("subflow", subflow as u64),
                ("before", before as u64),
                ("after", after as u64),
            ],
            EventKind::M3Grow { snd_cap, rcv_cap } => {
                vec![("snd_cap", snd_cap), ("rcv_cap", rcv_cap)]
            }
            EventKind::M4Cap { subflow, cap } => {
                vec![("subflow", subflow as u64), ("cap", cap as u64)]
            }
            EventKind::Fallback { .. } => vec![],
            EventKind::ChecksumFail { subflow, dsn } => {
                vec![("subflow", subflow as u64), ("dsn", dsn)]
            }
            EventKind::DataRto { dsn } => vec![("dsn", dsn)],
            EventKind::DataAckStall { dsn, stalled_ns } => {
                vec![("dsn", dsn), ("stalled_ns", stalled_ns)]
            }
            EventKind::JoinRejected { token } => vec![("token", token as u64)],
            EventKind::SubflowReset { subflow } => vec![("subflow", subflow as u64)],
            EventKind::ReorderHighWater { segs, bytes } => {
                vec![("segs", segs), ("bytes", bytes)]
            }
            EventKind::TcpRto { subflow, backoff } => {
                vec![("subflow", subflow as u64), ("backoff", backoff as u64)]
            }
            EventKind::TcpFastRetransmit { subflow, seq } => {
                vec![("subflow", subflow as u64), ("seq", seq as u64)]
            }
            EventKind::AddAddr { addr, id, sent } => vec![
                ("addr", addr as u64),
                ("id", id as u64),
                ("sent", sent as u64),
            ],
            EventKind::RemoveAddr { id, sent } => {
                vec![("id", id as u64), ("sent", sent as u64)]
            }
            EventKind::RemoveAddrUnknown { id } => vec![("id", id as u64)],
            EventKind::PmOpenSubflow {
                local,
                remote,
                backup,
            } => vec![
                ("local", local as u64),
                ("remote", remote as u64),
                ("backup", backup as u64),
            ],
            EventKind::PmAdvertise { addr, id } => {
                vec![("addr", addr as u64), ("id", id as u64)]
            }
            EventKind::PmBackupPromoted { subflow } => vec![("subflow", subflow as u64)],
            EventKind::SchedulerStall {
                pending_bytes,
                reinject_queued,
            } => vec![
                ("pending_bytes", pending_bytes),
                ("reinject_queued", reinject_queued),
            ],
            EventKind::PathSuspect { subflow, rtos } => {
                vec![("subflow", subflow as u64), ("rtos", rtos as u64)]
            }
            EventKind::PathFailed {
                subflow,
                reinjected,
            } => vec![("subflow", subflow as u64), ("reinjected", reinjected)],
            EventKind::PathRecovered { subflow } => vec![("subflow", subflow as u64)],
            EventKind::BlackoutInjected { path } => vec![("path", path as u64)],
            EventKind::ConnAborted { code } => vec![("code", code as u64)],
        }
    }
}

/// A timestamped [`EventKind`]. `at_ns` is simulated-clock nanoseconds
/// supplied by the caller; this crate never reads a real clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated time the event was recorded, in nanoseconds.
    pub at_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Fixed-capacity ring of the most recent events. Older events are
/// overwritten once full; `total`/`dropped` keep the bookkeeping honest.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest retained event within `buf`.
    head: usize,
    /// Events ever offered, including dropped ones.
    total: u64,
}

impl EventRing {
    /// An empty ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            total: 0,
        }
    }

    /// Record an event, evicting the oldest if full.
    pub fn push(&mut self, ev: Event) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events ever offered to the ring.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// Default event-ring capacity for a [`Recorder`].
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Accumulates telemetry for one component (a connection, a TCP socket, a
/// simulated link...). Recording is plain field arithmetic — no locking,
/// no allocation beyond the bounded ring.
#[derive(Clone, Debug)]
pub struct Recorder {
    counters: [u64; NUM_COUNTERS],
    gauges: [Gauge; NUM_GAUGES],
    ring: EventRing,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the default event capacity.
    pub fn new() -> Recorder {
        Recorder::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder retaining at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Recorder {
        Recorder {
            counters: [0; NUM_COUNTERS],
            gauges: [Gauge::default(); NUM_GAUGES],
            ring: EventRing::new(capacity),
        }
    }

    /// Increment `id` by one.
    pub fn count(&mut self, id: CounterId) {
        self.counters[id as usize] += 1;
    }

    /// Increment `id` by `n`.
    pub fn count_n(&mut self, id: CounterId, n: u64) {
        self.counters[id as usize] += n;
    }

    /// Current value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// Set gauge `id`, updating its high-water mark.
    pub fn gauge_set(&mut self, id: GaugeId, value: u64) {
        let g = &mut self.gauges[id as usize];
        g.current = value;
        g.max = g.max.max(value);
    }

    /// Current state of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> Gauge {
        self.gauges[id as usize]
    }

    /// Record an event at sim-time `at_ns`.
    pub fn event(&mut self, at_ns: u64, kind: EventKind) {
        self.ring.push(Event { at_ns, kind });
    }

    /// Fold another recorder's state into this one: counters add, gauge
    /// maxima merge (currents take the other's as more recent), and the
    /// other's retained events are replayed into this ring. Used by the
    /// connection to absorb per-subflow socket telemetry.
    pub fn absorb(&mut self, other: &Recorder) {
        for i in 0..NUM_COUNTERS {
            self.counters[i] += other.counters[i];
        }
        for i in 0..NUM_GAUGES {
            self.gauges[i].max = self.gauges[i].max.max(other.gauges[i].max);
            self.gauges[i].current = other.gauges[i].current;
        }
        for ev in other.ring.iter() {
            self.ring.push(*ev);
        }
        // Events dropped upstream are still events offered.
        self.ring.total += other.ring.dropped();
    }

    /// An immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters,
            gauges: self.gauges,
            events: self.ring.iter().copied().collect(),
            events_total: self.ring.total(),
            events_dropped: self.ring.dropped(),
        }
    }
}

/// Immutable copy of a [`Recorder`]'s state, suitable for embedding in
/// stats structs and report output.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    counters: [u64; NUM_COUNTERS],
    gauges: [Gauge; NUM_GAUGES],
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events ever recorded, including those evicted from the ring.
    pub events_total: u64,
    /// Events evicted from the ring before this snapshot.
    pub events_dropped: u64,
}

// Manual impl: derived `Default` stops at 32-element arrays.
impl Default for TelemetrySnapshot {
    fn default() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: [0; NUM_COUNTERS],
            gauges: [Gauge::default(); NUM_GAUGES],
            events: Vec::new(),
            events_total: 0,
            events_dropped: 0,
        }
    }
}

impl TelemetrySnapshot {
    /// Value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// State of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> Gauge {
        self.gauges[id as usize]
    }

    /// Causes of recorded fallbacks, oldest first (from retained events).
    pub fn fallback_causes(&self) -> Vec<FallbackCause> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Fallback { cause } => Some(cause),
                _ => None,
            })
            .collect()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.events_total == 0
            && self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|g| g.max == 0)
    }

    /// Render as a JSON object. Zero counters and untouched gauges are
    /// skipped to keep harness reports readable; events carry their
    /// variant name, sim-time, and payload fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        let mut first = true;
        for id in CounterId::ALL {
            let v = self.counter(id);
            if v != 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{}", id.name(), v));
            }
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for id in GaugeId::ALL {
            let g = self.gauge(id);
            if g.max != 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\"{}\":{{\"current\":{},\"max\":{}}}",
                    id.name(),
                    g.current,
                    g.max
                ));
            }
        }
        out.push_str(&format!(
            "}},\"events_total\":{},\"events_dropped\":{},\"events\":[",
            self.events_total, self.events_dropped
        ));
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ns\":{},\"kind\":\"{}\"",
                ev.at_ns,
                ev.kind.name()
            ));
            if let EventKind::Fallback { cause } = ev.kind {
                out.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
            }
            for (name, value) in ev.kind.fields() {
                out.push_str(&format!(",\"{name}\":{value}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Render nonzero counters and touched gauges as an aligned two-column
    /// text table, one line per entry, for terminal summaries.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for id in CounterId::ALL {
            let v = self.counter(id);
            if v != 0 {
                rows.push((id.name().to_string(), v.to_string()));
            }
        }
        for id in GaugeId::ALL {
            let g = self.gauge(id);
            if g.max != 0 {
                rows.push((format!("{} (max)", id.name()), g.max.to_string()));
            }
        }
        let causes = self.fallback_causes();
        if !causes.is_empty() {
            let list: Vec<&str> = causes.iter().map(|c| c.name()).collect();
            rows.push(("fallback_causes".to_string(), list.join(",")));
        }
        if self.events_dropped != 0 {
            rows.push((
                "events_dropped".to_string(),
                self.events_dropped.to_string(),
            ));
        }
        if rows.is_empty() {
            return "  (no telemetry recorded)\n".to_string();
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new();
        r.count(CounterId::M1Reinjections);
        r.count_n(CounterId::M1Reinjections, 2);
        r.count(CounterId::TcpRtos);
        let s = r.snapshot();
        assert_eq!(s.counter(CounterId::M1Reinjections), 3);
        assert_eq!(s.counter(CounterId::TcpRtos), 1);
        assert_eq!(s.counter(CounterId::M2Penalizations), 0);
    }

    #[test]
    fn gauges_track_high_water() {
        let mut r = Recorder::new();
        r.gauge_set(GaugeId::OfoQueueSegs, 5);
        r.gauge_set(GaugeId::OfoQueueSegs, 12);
        r.gauge_set(GaugeId::OfoQueueSegs, 3);
        let g = r.snapshot().gauge(GaugeId::OfoQueueSegs);
        assert_eq!(g.current, 3);
        assert_eq!(g.max, 12);
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = Recorder::with_event_capacity(3);
        for i in 0..5u64 {
            r.event(i, EventKind::DataRto { dsn: i });
        }
        let s = r.snapshot();
        assert_eq!(s.events_total, 5);
        assert_eq!(s.events_dropped, 2);
        let times: Vec<u64> = s.events.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn absorb_merges_counters_gauges_events() {
        let mut a = Recorder::new();
        a.count(CounterId::TcpRtos);
        a.gauge_set(GaugeId::Subflows, 2);
        let mut b = Recorder::new();
        b.count_n(CounterId::TcpRtos, 4);
        b.gauge_set(GaugeId::Subflows, 7);
        b.event(
            9,
            EventKind::TcpRto {
                subflow: 1,
                backoff: 0,
            },
        );
        a.absorb(&b);
        let s = a.snapshot();
        assert_eq!(s.counter(CounterId::TcpRtos), 5);
        assert_eq!(s.gauge(GaugeId::Subflows).max, 7);
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events_total, 1);
    }

    #[test]
    fn fallback_causes_extracted() {
        let mut r = Recorder::new();
        r.count(CounterId::Fallbacks);
        r.event(
            100,
            EventKind::Fallback {
                cause: FallbackCause::ChecksumFail,
            },
        );
        let s = r.snapshot();
        assert_eq!(s.fallback_causes(), vec![FallbackCause::ChecksumFail]);
    }

    #[test]
    fn json_skips_zeros_and_names_events() {
        let mut r = Recorder::new();
        r.count(CounterId::M2Penalizations);
        r.event(
            7,
            EventKind::M2Penalize {
                subflow: 1,
                before: 20,
                after: 10,
            },
        );
        let j = r.snapshot().to_json();
        assert!(j.contains("\"m2_penalizations\":1"));
        assert!(!j.contains("m1_reinjections"));
        assert!(j.contains("\"kind\":\"m2_penalize\""));
        assert!(j.contains("\"before\":20"));
        assert!(j.contains("\"at_ns\":7"));
    }

    #[test]
    fn table_renders_nonzero_rows() {
        let mut r = Recorder::new();
        r.count_n(CounterId::ReorderInserts, 42);
        r.gauge_set(GaugeId::OfoQueueBytes, 9000);
        let t = r.snapshot().render_table();
        assert!(t.contains("reorder_inserts"));
        assert!(t.contains("42"));
        assert!(t.contains("ofo_queue_bytes (max)"));
        assert!(!t.contains("tcp_rtos"));
    }

    #[test]
    fn empty_snapshot_is_empty() {
        assert!(Recorder::new().snapshot().is_empty());
        let mut r = Recorder::new();
        r.gauge_set(GaugeId::RcvBufCap, 1);
        assert!(!r.snapshot().is_empty());
    }
}
