//! Time-series tracing: timestamped samples of per-subflow and
//! connection-level state, plus discrete span events, all on the simulated
//! clock.
//!
//! The counters and event ring in the crate root answer *whether* a
//! mechanism fired; this module answers *when*, and what the windows looked
//! like around it — the `tcptrace`/`ss -i` view the paper's time-domain
//! figures (rcvbuf-limited goodput over time, WiFi+3G interaction) are
//! drawn from. Three record kinds share one ring:
//!
//! * [`TraceRecord::SubflowSample`] — cwnd, ssthresh, srtt, in-flight and
//!   subflow sequence state, taken on every congestion-control event and
//!   on a configurable interval;
//! * [`TraceRecord::ConnSample`] — advertised rwnd, data-level send/recv
//!   edges, reorder-queue occupancy, and the M3-autotuned buffer caps;
//! * [`TraceRecord::Span`] — a discrete event (M1 reinjection, M2 penalty,
//!   M4 cap, fallback, scheduler stall...) reusing [`EventKind`], anchored
//!   to the subflow series it interrupts.
//!
//! Tracing is zero-cost when disabled: a disabled [`Tracer`] holds no
//! buffer (an empty `Vec` does not allocate) and [`Tracer::record`] is a
//! single branch. When enabled it is bounded: a fixed-capacity ring
//! overwrites the oldest records and reports `dropped_samples` — no silent
//! truncation, no unbounded growth.

use crate::EventKind;

/// Subflow id stamped on connection-level [`TraceRecord::Span`]s (no
/// single subflow series is interrupted).
pub const SPAN_CONN_LEVEL: u32 = u32::MAX;

/// Configuration for a [`Tracer`]. Carried inside the stack's config so a
/// connection and its subflow sockets agree on gating and capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false nothing is ever buffered or allocated.
    pub enabled: bool,
    /// Ring capacity in records (per tracer). Must be nonzero when
    /// enabled; validated by the stack's config builder.
    pub capacity: usize,
    /// Interval for periodic samples between congestion-control events,
    /// in simulated nanoseconds.
    pub sample_interval_ns: u64,
}

/// Default per-tracer ring capacity: ample for the paper's 25-second
/// scenarios at ACK-rate sampling without dropping records.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default periodic sampling interval (10 ms of simulated time).
pub const DEFAULT_SAMPLE_INTERVAL_NS: u64 = 10_000_000;

impl TraceConfig {
    /// Tracing off — the zero-cost default.
    pub const fn disabled() -> TraceConfig {
        TraceConfig {
            enabled: false,
            capacity: 0,
            sample_interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
        }
    }

    /// Tracing on with default capacity and interval.
    pub const fn enabled() -> TraceConfig {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_TRACE_CAPACITY,
            sample_interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::disabled()
    }
}

/// One timestamped trace record. All variants are `Copy` so the ring never
/// allocates per record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    /// Per-subflow TCP state, taken on congestion-control events and on
    /// the sampling interval.
    SubflowSample {
        /// Simulated-clock nanoseconds.
        at_ns: u64,
        /// Owning subflow index.
        subflow: u32,
        /// Congestion window in bytes.
        cwnd: u32,
        /// Slow-start threshold in bytes.
        ssthresh: u32,
        /// Smoothed RTT in microseconds (0 before the first sample).
        srtt_us: u64,
        /// Bytes in flight at the subflow level.
        in_flight: u32,
        /// Subflow-level next send sequence number.
        snd_nxt: u32,
        /// Subflow-level next expected receive sequence number.
        rcv_nxt: u32,
    },
    /// Connection-level state, taken on the sampling interval.
    ConnSample {
        /// Simulated-clock nanoseconds.
        at_ns: u64,
        /// Advertised connection-level receive window in bytes.
        rwnd: u32,
        /// Next data sequence number to assign.
        data_snd_nxt: u64,
        /// Oldest un-DATA-ACKed data sequence number.
        data_snd_una: u64,
        /// Next expected data sequence number at the receiver.
        data_rcv_nxt: u64,
        /// Out-of-order queue depth in segments.
        reorder_segs: u64,
        /// Out-of-order queue occupancy in bytes.
        reorder_bytes: u64,
        /// Connection-level send buffer capacity (M3-autotuned).
        snd_buf_cap: u64,
        /// Connection-level receive buffer capacity (M3-autotuned).
        rcv_buf_cap: u64,
    },
    /// A discrete event interrupting the series. `subflow` names the
    /// series it belongs to ([`SPAN_CONN_LEVEL`] for connection-level
    /// events like fallback or scheduler stalls).
    Span {
        /// Simulated-clock nanoseconds.
        at_ns: u64,
        /// Subflow the event interrupts, or [`SPAN_CONN_LEVEL`].
        subflow: u32,
        /// What happened (shared with the event ring).
        kind: EventKind,
    },
}

impl TraceRecord {
    /// Timestamp of the record in simulated nanoseconds.
    pub fn at_ns(&self) -> u64 {
        match *self {
            TraceRecord::SubflowSample { at_ns, .. }
            | TraceRecord::ConnSample { at_ns, .. }
            | TraceRecord::Span { at_ns, .. } => at_ns,
        }
    }

    /// Stable snake_case record-type name used in JSONL and CSV output.
    pub fn type_name(&self) -> &'static str {
        match self {
            TraceRecord::SubflowSample { .. } => "subflow_sample",
            TraceRecord::ConnSample { .. } => "conn_sample",
            TraceRecord::Span { .. } => "span",
        }
    }

    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match *self {
            TraceRecord::SubflowSample {
                at_ns,
                subflow,
                cwnd,
                ssthresh,
                srtt_us,
                in_flight,
                snd_nxt,
                rcv_nxt,
            } => format!(
                "{{\"type\":\"subflow_sample\",\"at_ns\":{at_ns},\"subflow\":{subflow},\
                 \"cwnd\":{cwnd},\"ssthresh\":{ssthresh},\"srtt_us\":{srtt_us},\
                 \"in_flight\":{in_flight},\"snd_nxt\":{snd_nxt},\"rcv_nxt\":{rcv_nxt}}}"
            ),
            TraceRecord::ConnSample {
                at_ns,
                rwnd,
                data_snd_nxt,
                data_snd_una,
                data_rcv_nxt,
                reorder_segs,
                reorder_bytes,
                snd_buf_cap,
                rcv_buf_cap,
            } => format!(
                "{{\"type\":\"conn_sample\",\"at_ns\":{at_ns},\"rwnd\":{rwnd},\
                 \"data_snd_nxt\":{data_snd_nxt},\"data_snd_una\":{data_snd_una},\
                 \"data_rcv_nxt\":{data_rcv_nxt},\"reorder_segs\":{reorder_segs},\
                 \"reorder_bytes\":{reorder_bytes},\"snd_buf_cap\":{snd_buf_cap},\
                 \"rcv_buf_cap\":{rcv_buf_cap}}}"
            ),
            TraceRecord::Span {
                at_ns,
                subflow,
                kind,
            } => {
                let mut out = format!(
                    "{{\"type\":\"span\",\"at_ns\":{at_ns},\"kind\":\"{}\"",
                    kind.name()
                );
                if subflow == SPAN_CONN_LEVEL {
                    out.push_str(",\"subflow\":null");
                } else {
                    out.push_str(&format!(",\"subflow\":{subflow}"));
                }
                if let EventKind::Fallback { cause } = kind {
                    out.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
                }
                for (name, value) in kind.fields() {
                    out.push_str(&format!(",\"{name}\":{value}"));
                }
                out.push('}');
                out
            }
        }
    }
}

/// Records timestamped [`TraceRecord`]s into a bounded ring.
///
/// The hot-path contract: [`Tracer::record`] on a disabled tracer is a
/// single branch, and a disabled tracer never allocates (its buffer is an
/// empty `Vec`). Enabled tracers preallocate `capacity` once and then
/// overwrite in place.
#[derive(Clone, Debug)]
pub struct Tracer {
    enabled: bool,
    buf: Vec<TraceRecord>,
    capacity: usize,
    head: usize,
    total: u64,
    sample_interval_ns: u64,
    next_sample_at_ns: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::off()
    }
}

impl Tracer {
    /// A disabled tracer: no buffer, no allocation, every call a no-op.
    pub fn off() -> Tracer {
        Tracer {
            enabled: false,
            buf: Vec::new(),
            capacity: 0,
            head: 0,
            total: 0,
            sample_interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
            next_sample_at_ns: 0,
        }
    }

    /// A tracer honoring `cfg` (disabled config yields [`Tracer::off`]).
    pub fn new(cfg: TraceConfig) -> Tracer {
        if !cfg.enabled || cfg.capacity == 0 {
            return Tracer::off();
        }
        Tracer {
            enabled: true,
            buf: Vec::with_capacity(cfg.capacity),
            capacity: cfg.capacity,
            head: 0,
            total: 0,
            sample_interval_ns: cfg.sample_interval_ns.max(1),
            next_sample_at_ns: 0,
        }
    }

    /// Is this tracer recording? Callers gate any field gathering that
    /// would itself cost something behind this check.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one trace record (no-op when disabled).
    #[inline]
    pub fn record(&mut self, rec: TraceRecord) {
        if !self.enabled {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Interval gate for periodic sampling: true at most once per
    /// configured interval, advancing the deadline. Always false when
    /// disabled.
    #[inline]
    pub fn sample_due(&mut self, now_ns: u64) -> bool {
        if !self.enabled || now_ns < self.next_sample_at_ns {
            return false;
        }
        self.next_sample_at_ns = now_ns + self.sample_interval_ns;
        true
    }

    /// Records ever offered, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records overwritten to make room (the `dropped_samples` counter).
    pub fn dropped_samples(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Allocated ring capacity (0 when disabled — the zero-allocation
    /// contract a test can assert).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// An immutable copy of the retained records and the bookkeeping.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            records: self.iter().copied().collect(),
            total: self.total,
            dropped_samples: self.dropped_samples(),
        }
    }
}

/// Immutable copy of one or more [`Tracer`]s' state, time-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Retained records, ordered by `at_ns`.
    pub records: Vec<TraceRecord>,
    /// Records ever offered across the merged tracers.
    pub total: u64,
    /// Records overwritten before this snapshot was taken.
    pub dropped_samples: u64,
}

impl TraceSnapshot {
    /// Merge several snapshots (e.g. the connection tracer plus every
    /// subflow socket tracer) into one time-sorted timeline.
    pub fn merge(parts: Vec<TraceSnapshot>) -> TraceSnapshot {
        let mut records = Vec::with_capacity(parts.iter().map(|p| p.records.len()).sum());
        let mut total = 0;
        let mut dropped = 0;
        for p in parts {
            total += p.total;
            dropped += p.dropped_samples;
            records.extend(p.records);
        }
        records.sort_by_key(|r| r.at_ns());
        TraceSnapshot {
            records,
            total,
            dropped_samples: dropped,
        }
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0 && self.records.is_empty()
    }

    /// The span records, in time order.
    pub fn spans(&self) -> impl Iterator<Item = (u64, u32, EventKind)> + '_ {
        self.records.iter().filter_map(|r| match *r {
            TraceRecord::Span {
                at_ns,
                subflow,
                kind,
            } => Some((at_ns, subflow, kind)),
            _ => None,
        })
    }

    /// Distinct subflow ids appearing in subflow samples, ascending.
    pub fn subflow_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .records
            .iter()
            .filter_map(|r| match *r {
                TraceRecord::SubflowSample { subflow, .. } => Some(subflow),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Renders a [`TraceSnapshot`] as JSONL or CSV text. File placement is the
/// caller's business; this crate stays IO-free.
pub struct TraceWriter;

impl TraceWriter {
    /// One JSON object per line, time-ordered, with a trailing summary
    /// line carrying the bookkeeping (`{"type":"trace_summary",...}`).
    pub fn to_jsonl(snap: &TraceSnapshot) -> String {
        let mut out = String::new();
        for r in &snap.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"type\":\"trace_summary\",\"records\":{},\"total\":{},\"dropped_samples\":{}}}\n",
            snap.records.len(),
            snap.total,
            snap.dropped_samples
        ));
        out
    }

    /// A flat CSV table with one row per record; columns not applicable to
    /// a record type are left empty. Span payload fields are folded into a
    /// `detail` column as `name=value` pairs.
    pub fn to_csv(snap: &TraceSnapshot) -> String {
        let mut out = String::from(
            "at_ns,record,subflow,cwnd,ssthresh,srtt_us,in_flight,snd_nxt,rcv_nxt,\
             rwnd,data_snd_nxt,data_snd_una,data_rcv_nxt,reorder_segs,reorder_bytes,\
             snd_buf_cap,rcv_buf_cap,kind,detail\n",
        );
        for r in &snap.records {
            match *r {
                TraceRecord::SubflowSample {
                    at_ns,
                    subflow,
                    cwnd,
                    ssthresh,
                    srtt_us,
                    in_flight,
                    snd_nxt,
                    rcv_nxt,
                } => out.push_str(&format!(
                    "{at_ns},subflow_sample,{subflow},{cwnd},{ssthresh},{srtt_us},\
                     {in_flight},{snd_nxt},{rcv_nxt},,,,,,,,,,\n"
                )),
                TraceRecord::ConnSample {
                    at_ns,
                    rwnd,
                    data_snd_nxt,
                    data_snd_una,
                    data_rcv_nxt,
                    reorder_segs,
                    reorder_bytes,
                    snd_buf_cap,
                    rcv_buf_cap,
                } => out.push_str(&format!(
                    "{at_ns},conn_sample,,,,,,,,{rwnd},{data_snd_nxt},{data_snd_una},\
                     {data_rcv_nxt},{reorder_segs},{reorder_bytes},{snd_buf_cap},\
                     {rcv_buf_cap},,\n"
                )),
                TraceRecord::Span {
                    at_ns,
                    subflow,
                    kind,
                } => {
                    let sf = if subflow == SPAN_CONN_LEVEL {
                        String::new()
                    } else {
                        subflow.to_string()
                    };
                    let mut detail: Vec<String> = kind
                        .fields()
                        .into_iter()
                        .map(|(n, v)| format!("{n}={v}"))
                        .collect();
                    if let EventKind::Fallback { cause } = kind {
                        detail.push(format!("cause={}", cause.name()));
                    }
                    out.push_str(&format!(
                        "{at_ns},span,{sf},,,,,,,,,,,,,,,{},{}\n",
                        kind.name(),
                        detail.join(";")
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FallbackCause;

    fn sf_sample(at_ns: u64) -> TraceRecord {
        TraceRecord::SubflowSample {
            at_ns,
            subflow: 0,
            cwnd: 14600,
            ssthresh: 65535,
            srtt_us: 20_000,
            in_flight: 2920,
            snd_nxt: 1000,
            rcv_nxt: 1,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_allocates_nothing() {
        let mut t = Tracer::off();
        for i in 0..1000 {
            t.record(sf_sample(i));
        }
        assert_eq!(t.total(), 0);
        assert_eq!(t.capacity(), 0);
        assert_eq!(t.snapshot().records.len(), 0);
        assert!(!t.sample_due(1_000_000_000));
        // A disabled TraceConfig builds a disabled tracer.
        assert!(!Tracer::new(TraceConfig::disabled()).is_enabled());
    }

    #[test]
    fn ring_bounds_and_counts_dropped_samples() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            capacity: 3,
            sample_interval_ns: 1,
        });
        for i in 0..5 {
            t.record(sf_sample(i));
        }
        let s = t.snapshot();
        assert_eq!(s.total, 5);
        assert_eq!(s.dropped_samples, 2);
        let times: Vec<u64> = s.records.iter().map(|r| r.at_ns()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn sample_due_honors_interval() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            capacity: 8,
            sample_interval_ns: 100,
        });
        assert!(t.sample_due(0));
        assert!(!t.sample_due(50));
        assert!(t.sample_due(100));
        assert!(!t.sample_due(150));
        assert!(t.sample_due(500));
    }

    #[test]
    fn merge_sorts_by_time_and_sums_bookkeeping() {
        let mut a = Tracer::new(TraceConfig::enabled());
        let mut b = Tracer::new(TraceConfig::enabled());
        a.record(sf_sample(30));
        b.record(sf_sample(10));
        b.record(TraceRecord::Span {
            at_ns: 20,
            subflow: SPAN_CONN_LEVEL,
            kind: EventKind::Fallback {
                cause: FallbackCause::ChecksumFail,
            },
        });
        let m = TraceSnapshot::merge(vec![a.snapshot(), b.snapshot()]);
        let times: Vec<u64> = m.records.iter().map(|r| r.at_ns()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(m.total, 3);
        assert_eq!(m.spans().count(), 1);
    }

    #[test]
    fn jsonl_has_one_object_per_line_plus_summary() {
        let mut t = Tracer::new(TraceConfig::enabled());
        t.record(sf_sample(5));
        t.record(TraceRecord::ConnSample {
            at_ns: 7,
            rwnd: 1,
            data_snd_nxt: 2,
            data_snd_una: 3,
            data_rcv_nxt: 4,
            reorder_segs: 5,
            reorder_bytes: 6,
            snd_buf_cap: 7,
            rcv_buf_cap: 8,
        });
        let jsonl = TraceWriter::to_jsonl(&t.snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"subflow_sample\""));
        assert!(lines[0].contains("\"cwnd\":14600"));
        assert!(lines[1].contains("\"data_rcv_nxt\":4"));
        assert!(lines[2].contains("\"dropped_samples\":0"));
    }

    #[test]
    fn span_json_carries_kind_fields_and_null_subflow() {
        let rec = TraceRecord::Span {
            at_ns: 9,
            subflow: SPAN_CONN_LEVEL,
            kind: EventKind::M2Penalize {
                subflow: 1,
                before: 20,
                after: 10,
            },
        };
        let j = rec.to_json();
        assert!(j.contains("\"kind\":\"m2_penalize\""));
        assert!(j.contains("\"subflow\":null"));
        assert!(j.contains("\"before\":20"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let mut t = Tracer::new(TraceConfig::enabled());
        t.record(sf_sample(5));
        t.record(TraceRecord::Span {
            at_ns: 6,
            subflow: 1,
            kind: EventKind::M4Cap {
                subflow: 1,
                cap: 2920,
            },
        });
        let csv = TraceWriter::to_csv(&t.snapshot());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("at_ns,record,subflow,cwnd"));
        assert!(lines[1].contains("subflow_sample"));
        assert!(lines[2].contains("m4_cap"));
        assert!(lines[2].contains("cap=2920"));
    }
}
