//! Log-linear histogram for latency-style samples.
//!
//! Three subsystems grew their own quantile machinery: the runtime's
//! power-of-2 tick-skew buckets, the harness's sort-per-call
//! `AppDelayStats::quantile`, and the fig10 handshake rows. This is the
//! one replacement: an HdrHistogram-style log-linear layout — every
//! power-of-2 range is split into `SUBS` equal sub-buckets — so relative
//! error is bounded by `1/SUBS` (~3%) at any magnitude while the whole
//! structure stays a fixed ~15 KiB of `u64` counts. No dependencies, no
//! `std::time`, no per-sample allocation: values are caller-supplied
//! integers (nanoseconds, usually).

/// log2 of the sub-buckets per power-of-2 range.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-2 range (32 -> ~3.1% worst-case bucket width).
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: the linear region
/// `[0, 2*SUBS)` plus `SUBS` sub-buckets for each octave above it.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// Fixed-memory log-linear histogram over `u64` samples with tracked
/// min/max/sum, bounded ~3% relative quantile error.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// Boxed so the ~15 KiB of buckets never lands on the stack.
    buckets: Box<[u64; NUM_BUCKETS]>,
    samples: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for `v`: identity in the linear region, else
/// `(msb - SUB_BITS)` octaves of `SUBS` buckets plus the sub-bucket read
/// from the bits just below the most significant one.
fn bucket_index(v: u64) -> usize {
    if v < (2 * SUBS) as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUBS - 1);
    (msb as usize - SUB_BITS as usize) * SUBS + SUBS + sub
}

/// Exclusive upper bound of bucket `i` (the value quantiles report).
fn bucket_bound(i: usize) -> u64 {
    if i < 2 * SUBS {
        return i as u64 + 1;
    }
    let block = (i / SUBS - 1) as u32;
    let sub = (i % SUBS) as u64;
    // Saturates only on the single topmost bucket, whose true bound is 2^64.
    ((SUBS as u64 + sub) << block).saturating_add(1u64 << block)
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0u64; NUM_BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("bucket count"),
            samples: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.samples += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, exact. Zero when empty.
    pub fn min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, exact. Zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Value at quantile `q` in `0.0..=1.0`: the upper bound of the bucket
    /// holding the `ceil(q * samples)`-th sample, clamped into
    /// `[min, max]` so the extremes are exact (`quantile(0.0)` is the
    /// tracked minimum, `quantile(1.0)` the tracked maximum). Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        let rank = ((self.samples as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= rank {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other`'s samples into this histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.samples += other.samples;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Forget every sample.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.samples = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Non-empty buckets as `(exclusive_upper_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (bucket_bound(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn linear_region_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..(2 * SUBS as u64) {
            h.record(v);
        }
        // Every value below 2*SUBS gets its own bucket.
        assert_eq!(h.nonzero_buckets().count(), 2 * SUBS);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 2 * SUBS as u64 - 1);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_match() {
        let mut vals: Vec<u64> = (0..63)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift) + off))
            .collect();
        vals.sort_unstable();
        let mut prev = 0usize;
        for v in vals {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(i < NUM_BUCKETS);
            // v must fall below its bucket's exclusive upper bound.
            assert!(v < bucket_bound(i), "v {v} bound {}", bucket_bound(i));
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(123_456);
        }
        let p50 = h.quantile(0.5) as f64;
        let err = (p50 - 123_456.0).abs() / 123_456.0;
        assert!(err <= 1.0 / SUBS as f64, "relative error {err}");
    }

    #[test]
    fn extreme_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(1_000_000);
        h.record(5_000_000);
        h.record(20_000_000);
        assert_eq!(h.quantile(0.0), 1_000_000);
        assert_eq!(h.quantile(1.0), 20_000_000);
        assert_eq!(h.min(), 1_000_000);
        assert_eq!(h.max(), 20_000_000);
        assert_eq!(h.sum(), 26_000_000);
    }

    #[test]
    fn skewed_distribution_quantiles() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let p50 = h.quantile(0.50);
        assert!((992..=1008).contains(&p50), "p50 {p50}");
        assert!(h.quantile(0.99) <= 1008);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.sum(), 1_000_015);
    }

    #[test]
    fn clear_resets() {
        let mut h = LogHistogram::new();
        h.record(42);
        h.clear();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
