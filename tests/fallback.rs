//! Fallback behaviour through the full simulator with real middlebox
//! models in the path — §3.1, §3.3.6 and §4.1.

use mptcp::{Mechanisms, MptcpConfig};
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::{Scenario, TransportKind};
use mptcp_harness::transport::Transport;
use mptcp_middlebox::{OptionStripper, PayloadModifier, SegmentCoalescer, StripMode};
use mptcp_netsim::{Duration, LinkCfg, Path};

const SEED: u64 = 43;
const TRANSFER: usize = 150_000;

fn link() -> LinkCfg {
    LinkCfg {
        rate_bps: 10_000_000,
        delay: Duration::from_millis(10),
        queue_bytes: 64 * 1500,
        loss: 0.0,
    }
}

fn mptcp_cfg() -> MptcpConfig {
    MptcpConfig::default()
        .with_buffers(256 * 1024)
        .with_mechanisms(Mechanisms::M1_2)
}

fn scenario(paths: Vec<Path>) -> Scenario {
    Scenario::new(
        TransportKind::Mptcp(mptcp_cfg()),
        ClientApp::Bulk {
            total: TRANSFER,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        paths,
        SEED,
    )
}

fn conn(sc: &Scenario) -> &mptcp::MptcpConnection {
    match &sc.client().transport {
        Transport::Mptcp(c) => c,
        _ => panic!("expected mptcp"),
    }
}

#[test]
fn data_option_stripping_falls_back_and_delivers() {
    // Negotiation succeeds, but a route change puts a DSS-eating box in
    // the path: both ends must detect and continue as plain TCP.
    let p = Path::symmetric(link())
        .with_middlebox(Box::new(OptionStripper::mptcp(StripMode::DataOnly)));
    let mut sc = scenario(vec![p]);
    sc.run_for(Duration::from_secs(20));
    assert_eq!(sc.server().app_bytes_received, TRANSFER as u64);
    assert!(conn(&sc).is_fallback());
}

#[test]
fn checksum_failure_on_one_path_resets_only_that_subflow() {
    // §3.3.6: "if we detect a DSM-checksum failure on only one subflow,
    // that subflow is reset and the transfer continues on another".
    // Path 0 is clean; path 1 hosts a payload-modifying ALG.
    let clean = Path::symmetric(link());
    let dirty = Path::symmetric(link()).with_middlebox(Box::new(PayloadModifier::new(
        b"\x5a\x5a\x5a\x5a\x5a\x5a\x5a\x5a",
        b"\x21\x21\x21\x21\x21\x21",
    )));
    let mut sc = scenario(vec![clean, dirty]);
    sc.run_for(Duration::from_secs(20));
    assert_eq!(sc.server().app_bytes_received, TRANSFER as u64);
    let c = conn(&sc);
    assert!(!c.is_fallback(), "clean subflow keeps MPTCP alive");
    // The server-side connection reset the corrupted subflow.
    let server_conn = &sc.server().listener.conns[0];
    assert!(
        server_conn.stats.subflow_resets >= 1 || server_conn.stats.checksum_failures >= 1,
        "server stats: {:?}",
        server_conn.stats
    );
}

#[test]
fn coalescer_degrades_but_does_not_stall() {
    // §3.3.5: a normalizer merges segments and loses one DSS mapping; the
    // receiver drops unmapped bytes and the sender re-injects them.
    let p = Path::symmetric(link()).with_middlebox(Box::new(SegmentCoalescer::new(
        Duration::from_micros(500),
        4096,
    )));
    let mut sc = scenario(vec![p]);
    sc.run_for(Duration::from_secs(25));
    assert_eq!(
        sc.server().app_bytes_received,
        TRANSFER as u64,
        "transfer must complete despite lost mappings"
    );
    let server_conn = &sc.server().listener.conns[0];
    // Unmapped bytes were actually seen (the hazard was exercised).
    let unmapped: u64 = server_conn
        .subflows()
        .iter()
        .map(|s| s.tracker.unmapped_total)
        .sum();
    assert!(unmapped > 0, "coalescer should have eaten some mappings");
}

#[test]
fn dead_path_does_not_kill_connection() {
    // Robustness goal: second path is a black hole from the start; the
    // connection must still complete on the first.
    let clean = Path::symmetric(link());
    let mut dead_link = link();
    dead_link.loss = 1.0;
    let dead = Path::symmetric(dead_link);
    let mut sc = scenario(vec![clean, dead]);
    sc.run_for(Duration::from_secs(30));
    assert_eq!(sc.server().app_bytes_received, TRANSFER as u64);
    assert!(!conn(&sc).is_fallback());
}
