//! End-to-end transfers through the full simulator: MPTCP, plain TCP and
//! bonded TCP on clean paths.

use mptcp::{Mechanisms, MptcpConfig};
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::{Scenario, TransportKind};
use mptcp_harness::transport::Transport;
use mptcp_netsim::{Duration, LinkCfg, Path};
use mptcp_tcpstack::TcpConfig;

const SEED: u64 = 7;

fn bulk(total: usize) -> ClientApp {
    ClientApp::Bulk {
        total,
        written: 0,
        close_when_done: true,
    }
}

fn two_clean_paths() -> Vec<Path> {
    vec![
        Path::symmetric(LinkCfg::wifi()),
        Path::symmetric(LinkCfg::threeg()),
    ]
}

#[test]
fn mptcp_transfer_completes_over_two_paths() {
    let cfg = MptcpConfig::default()
        .with_buffers(256 * 1024)
        .with_mechanisms(Mechanisms::M1_2);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        bulk(500_000),
        ServerApp::Sink,
        two_clean_paths(),
        SEED,
    );
    sc.run_for(Duration::from_secs(20));
    assert_eq!(sc.server().app_bytes_received, 500_000);
    // Both subflows carried data.
    let client = sc.client();
    let Transport::Mptcp(conn) = &client.transport else {
        panic!("expected mptcp")
    };
    assert!(!conn.is_fallback());
    let per: Vec<u64> = conn
        .subflows()
        .iter()
        .map(|s| s.sock.stats.bytes_acked)
        .collect();
    assert_eq!(per.len(), 2);
    assert!(per.iter().all(|&b| b > 20_000), "{per:?}");
}

#[test]
fn tcp_baseline_completes() {
    let mut sc = Scenario::new(
        TransportKind::Tcp(TcpConfig::with_buffers(256 * 1024)),
        bulk(300_000),
        ServerApp::Sink,
        vec![Path::symmetric(LinkCfg::wifi())],
        SEED,
    );
    sc.run_for(Duration::from_secs(10));
    assert_eq!(sc.server().app_bytes_received, 300_000);
}

#[test]
fn bonded_tcp_completes_on_symmetric_paths() {
    // Per-packet round-robin over two identical clean links: reordering is
    // mild and TCP copes (the Figure 11 bonding baseline).
    let paths = vec![
        Path::symmetric(LinkCfg::fast_ethernet()),
        Path::symmetric(LinkCfg::fast_ethernet()),
    ];
    let mut sc = Scenario::new(
        TransportKind::BondedTcp(TcpConfig::with_buffers(512 * 1024)),
        bulk(1_000_000),
        ServerApp::Sink,
        paths,
        SEED,
    );
    sc.run_for(Duration::from_secs(5));
    assert_eq!(sc.server().app_bytes_received, 1_000_000);
}

#[test]
fn mptcp_aggregates_more_than_single_path() {
    // The Figure 9 scenario (capped 2 Mbps WiFi + 2 Mbps 3G, 500 KB
    // buffers): MPTCP must beat TCP on either single interface — the
    // paper's core value proposition.
    let capped_wifi = LinkCfg::with_buffer_time(
        2_000_000,
        Duration::from_millis(10),
        Duration::from_millis(80),
    );
    let cfg = MptcpConfig::default()
        .with_buffers(500_000)
        .with_mechanisms(Mechanisms::M1_2);
    let mut m = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![
            Path::symmetric(capped_wifi),
            Path::symmetric(LinkCfg::threeg()),
        ],
        SEED,
    );
    m.run_for(Duration::from_secs(20));
    let mptcp_bytes = m.server().app_bytes_received;

    let mut t = Scenario::new(
        TransportKind::Tcp(TcpConfig::with_buffers(500_000)),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![Path::symmetric(capped_wifi)],
        SEED,
    );
    t.run_for(Duration::from_secs(20));
    let tcp_bytes = t.server().app_bytes_received;

    assert!(
        mptcp_bytes > tcp_bytes,
        "mptcp {mptcp_bytes} should beat single-path tcp {tcp_bytes}"
    );
}

#[test]
fn http_fleet_serves_requests() {
    let tcp = TcpConfig::with_buffers(256 * 1024);
    let mut sc = Scenario::http_fleet(
        TransportKind::Tcp(tcp),
        2,
        20_000,
        || Path::symmetric(LinkCfg::fast_ethernet()),
        SEED,
    );
    sc.run_for(Duration::from_millis(1200));
    let done: u64 = sc
        .clients
        .iter()
        .map(|&id| sc.sim.hosts[id].as_client().unwrap().http_completed())
        .sum();
    assert!(done > 10, "closed loop served only {done} requests");
}

#[test]
fn http_fleet_mptcp_uses_two_subflows() {
    let cfg = MptcpConfig::builder()
        .buffers(256 * 1024)
        .checksum(false)
        .build()
        .expect("valid config");
    let mut sc = Scenario::http_fleet(
        TransportKind::Mptcp(cfg),
        2,
        150_000,
        || Path::symmetric(LinkCfg::fast_ethernet()),
        SEED,
    );
    sc.run_for(Duration::from_millis(1500));
    let done: u64 = sc
        .clients
        .iter()
        .map(|&id| sc.sim.hosts[id].as_client().unwrap().http_completed())
        .sum();
    assert!(done > 2, "mptcp closed loop served only {done}");
}
