//! Behavioural assertions on the paper's receive-buffer mechanisms:
//! Figure 4's pathology and its fixes, Figure 6(a)'s weak-cellular rescue.

use mptcp_harness::experiments::common::{run_bulk, wifi_3g_paths, Variant};
use mptcp_harness::experiments::fig6_scenarios::Panel;
use mptcp_netsim::{Duration, LinkCfg, Path};

const SEED: u64 = 31;
const WARM: Duration = Duration::from_secs(2);
const MEAS: Duration = Duration::from_secs(8);

fn wifi_tcp(buf: usize) -> f64 {
    run_bulk(
        Variant::Tcp,
        buf,
        vec![Path::symmetric(LinkCfg::wifi())],
        WARM,
        MEAS,
        SEED,
    )
    .goodput_mbps
}

#[test]
fn regular_mptcp_underperforms_tcp_when_underbuffered() {
    // The paper's headline pathology (Fig 4a): with a small shared buffer,
    // packets stuck on 3G stall the fast WiFi path.
    let buf = 150_000;
    let regular = run_bulk(
        Variant::MptcpRegular,
        buf,
        wifi_3g_paths(),
        WARM,
        MEAS,
        SEED,
    );
    let tcp = wifi_tcp(buf);
    assert!(
        regular.goodput_mbps < tcp,
        "regular MPTCP {:.2} should trail TCP-over-WiFi {:.2} at {buf}B",
        regular.goodput_mbps,
        tcp
    );
}

#[test]
fn mechanisms_rescue_underbuffered_mptcp() {
    // Fig 4(c): M1+M2 lift underbuffered MPTCP well above regular MPTCP.
    let buf = 100_000;
    let regular = run_bulk(
        Variant::MptcpRegular,
        buf,
        wifi_3g_paths(),
        WARM,
        MEAS,
        SEED,
    );
    let fixed = run_bulk(Variant::MptcpM12, buf, wifi_3g_paths(), WARM, MEAS, SEED);
    assert!(
        fixed.goodput_mbps > regular.goodput_mbps * 1.1,
        "M1,2 {:.2} vs regular {:.2}",
        fixed.goodput_mbps,
        regular.goodput_mbps
    );
}

#[test]
fn m1_throughput_exceeds_goodput() {
    // Fig 4(b): opportunistic retransmission alone wastes capacity on
    // duplicates — visible as throughput > goodput.
    let buf = 150_000;
    let m1 = run_bulk(Variant::MptcpM1, buf, wifi_3g_paths(), WARM, MEAS, SEED);
    assert!(
        m1.throughput_mbps >= m1.goodput_mbps,
        "throughput {:.2} < goodput {:.2}?",
        m1.throughput_mbps,
        m1.goodput_mbps
    );
}

#[test]
fn weak_cellular_link_rescued_by_mechanisms() {
    // Fig 6(a): WiFi + 50 Kbps 3G with 2 s of bufferbloat. Regular MPTCP
    // collapses (every 3G loss stalls the window for seconds); M1+M2
    // multiply throughput several-fold (paper: ~10x at 200 KB).
    let buf = 200_000;
    let paths = || Panel::WeakCellular.paths();
    let warm = Duration::from_secs(3);
    let meas = Duration::from_secs(15);
    let regular = run_bulk(Variant::MptcpRegular, buf, paths(), warm, meas, SEED);
    let fixed = run_bulk(Variant::MptcpM12, buf, paths(), warm, meas, SEED);
    assert!(
        fixed.goodput_mbps > regular.goodput_mbps * 2.0,
        "M1,2 {:.3} vs regular {:.3}: expected multi-x rescue",
        fixed.goodput_mbps,
        regular.goodput_mbps
    );
}

#[test]
fn symmetric_paths_do_not_need_mechanisms() {
    // Fig 6(c): on equal paths, underbuffered regular MPTCP ≈ MPTCP+M1,2
    // (sticking to one path is optimal anyway). The parity property is
    // rate-independent; 3 × 100 Mbps keeps the debug-mode test fast
    // (the full-rate sweep lives in `repro fig6c`).
    let buf = 500_000;
    // WAN-ish symmetric paths (queue comparable to BDP, 20 ms base RTT)
    // so per-path queueing noise does not dwarf the propagation delay —
    // the regime the figure describes, scaled to 100 Mbps for test speed.
    let link = LinkCfg::with_buffer_time(
        100_000_000,
        Duration::from_millis(10),
        Duration::from_millis(10),
    );
    let paths = || {
        vec![
            Path::symmetric(link),
            Path::symmetric(link),
            Path::symmetric(link),
        ]
    };
    let warm = Duration::from_secs(1);
    let meas = Duration::from_secs(3);
    let regular = run_bulk(Variant::MptcpRegular, buf, paths(), warm, meas, SEED);
    let fixed = run_bulk(Variant::MptcpM12, buf, paths(), warm, meas, SEED);
    let ratio = fixed.goodput_mbps / regular.goodput_mbps.max(1e-9);
    assert!(
        (0.6..=1.7).contains(&ratio),
        "regular {:.1} vs M1,2 {:.1} should be comparable",
        regular.goodput_mbps,
        fixed.goodput_mbps
    );
}

#[test]
fn reinjection_after_subflow_death_delivers_on_survivor() {
    // Break-before-make: when a path dies mid-transfer, the DSNs stranded
    // in its flight window are reinjected and delivered on the survivor.
    use mptcp::telemetry::EventKind;
    use mptcp::{Mechanisms, MptcpConfig};
    use mptcp_harness::{ClientApp, Scenario, ServerApp, TransportKind};
    use mptcp_netsim::{FaultKind, SimTime};

    const TOTAL: usize = 2_000_000;
    let cfg = MptcpConfig::default()
        .with_buffers(256 * 1024)
        .with_mechanisms(Mechanisms::M1_2);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: TOTAL,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        wifi_3g_paths(),
        SEED,
    );
    // Kill the WiFi path — the scheduler's preferred one, so it carries
    // in-flight data — permanently, one second in.
    sc.sim
        .faults
        .at(SimTime::from_secs(1), 0, FaultKind::LinkDown);
    let deadline = SimTime::from_secs(60);
    while sc.sim.now < deadline && sc.server().app_bytes_received < TOTAL as u64 {
        sc.run_for(Duration::from_secs(1));
    }
    assert_eq!(
        sc.server().app_bytes_received,
        TOTAL as u64,
        "bytes stranded on the dead path were not delivered on the survivor"
    );

    let client = sc.client_mut();
    let conn = client.transport.as_mptcp().expect("mptcp client");
    let reinjections = conn.stats.reinjections;
    let telemetry = client.transport.telemetry();
    let reinjected_at_failure: u64 = telemetry
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::PathFailed {
                subflow: 0,
                reinjected,
            } => Some(reinjected),
            _ => None,
        })
        .sum();
    assert!(reinjected_at_failure > 0, "path death reinjected nothing");
    assert!(
        reinjections >= reinjected_at_failure,
        "stats.reinjections {reinjections} < {reinjected_at_failure} chunks reinjected at failure"
    );
}

#[test]
fn autotuning_keeps_memory_below_configured_max() {
    // Fig 5: with M3 the buffers grow only as needed.
    let buf = 2_000_000;
    let r = run_bulk(Variant::MptcpM123, buf, wifi_3g_paths(), WARM, MEAS, SEED);
    assert!(r.sender_mem > 0.0);
    assert!(
        r.sender_mem < buf as f64,
        "sender memory {:.0} should stay below the 2 MB cap",
        r.sender_mem
    );
}

#[test]
fn capping_reduces_memory_on_bufferbloated_paths() {
    // Fig 5: M4 (cwnd capping) cuts memory vs M1,2,3 alone when the 3G
    // path has seconds of buffering.
    let buf = 1_000_000;
    let without = run_bulk(Variant::MptcpM123, buf, wifi_3g_paths(), WARM, MEAS, SEED);
    let with = run_bulk(Variant::MptcpAll, buf, wifi_3g_paths(), WARM, MEAS, SEED);
    assert!(
        with.sender_mem < without.sender_mem * 1.05,
        "M4 {:.0} should not exceed M1,2,3 {:.0}",
        with.sender_mem,
        without.sender_mem
    );
}
