//! Demonstrations of §3's design arguments: the shared receive pool
//! avoids the per-subflow deadlock, DATA_ACKs ride flow-control-exempt
//! pure ACKs, and relative mappings compose with hostile middlebox chains.

use mptcp::{Mechanisms, MptcpConfig};
use mptcp_harness::hosts::{ClientApp, ServerApp};
use mptcp_harness::scenario::{Scenario, TransportKind};
use mptcp_harness::transport::Transport;
use mptcp_middlebox::{SegmentSplitter, SeqRewriter};
use mptcp_netsim::{Duration, LinkCfg, Path, SimTime};

const SEED: u64 = 61;

fn link() -> LinkCfg {
    LinkCfg {
        rate_bps: 10_000_000,
        delay: Duration::from_millis(10),
        queue_bytes: 64 * 1500,
        loss: 0.0,
    }
}

#[test]
fn slow_reader_pauses_but_never_deadlocks() {
    // §3.3.1/§3.3.3: the receive window pauses the sender when the app is
    // slow, and reopens when it reads — DATA_ACKs and window updates ride
    // pure ACKs that flow control cannot block, so no deadlock cycle can
    // form even with data queued on both subflows.
    let total = 120_000;
    let cfg = MptcpConfig::default()
        .with_buffers(32 * 1024) // tiny shared pool
        .with_mechanisms(Mechanisms::M1_2);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total,
            written: 0,
            close_when_done: false,
        },
        ServerApp::SlowSink {
            rate: 40_000, // bytes/sec: far slower than the paths
            last: SimTime::ZERO,
            credit: 0.0,
        },
        vec![Path::symmetric(link()), Path::symmetric(link())],
        SEED,
    );
    // 120 KB at 40 KB/s needs ~3 s; give slack for handshakes and pauses.
    sc.run_for(Duration::from_secs(10));
    assert_eq!(
        sc.server().app_bytes_received,
        total as u64,
        "slow reader must throttle, not deadlock"
    );
}

#[test]
fn subflow_stall_does_not_deadlock_shared_pool() {
    // The §3.3.1 deadlock scenario: data for the head of the stream was
    // sent on a subflow that dies; the rest of the window arrived on the
    // other subflow and fills the buffer. With per-subflow buffers this
    // deadlocks; with the shared pool + re-injection it must recover.
    let total = 200_000;
    let cfg = MptcpConfig::default()
        .with_buffers(64 * 1024)
        .with_mechanisms(Mechanisms::M1_2);
    let clean = Path::symmetric(link());
    // The second path delivers the SYN exchange then starts dropping
    // everything (random loss = 1 would break the join handshake, so give
    // it heavy but not total loss: stalls and dies, as in §3.3.1 step 3).
    let mut flaky_link = link();
    flaky_link.loss = 0.9;
    let flaky = Path::symmetric(flaky_link);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![clean, flaky],
        SEED,
    );
    sc.run_for(Duration::from_secs(60));
    assert_eq!(sc.server().app_bytes_received, total as u64);
}

#[test]
fn relative_mappings_survive_rewriter_plus_splitter_chain() {
    // §3.3.4's combined hazard: a sequence randomizer AND a TSO splitter
    // on the same path. Absolute-seq mappings would break twice over;
    // relative, length-delimited mappings shrug.
    let total = 100_000;
    let p = Path::symmetric(link())
        .with_middlebox(Box::new(SeqRewriter::new()))
        .with_middlebox(Box::new(SegmentSplitter::new(512)));
    let cfg = MptcpConfig::default()
        .with_buffers(256 * 1024)
        .with_mechanisms(Mechanisms::M1_2);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![p],
        SEED,
    );
    sc.run_for(Duration::from_secs(20));
    assert_eq!(sc.server().app_bytes_received, total as u64);
    let c = match &sc.client().transport {
        Transport::Mptcp(c) => c,
        _ => unreachable!(),
    };
    assert!(!c.is_fallback(), "MPTCP should survive, not fall back");
}

#[test]
fn connection_level_memory_accounting_matches_claims() {
    // §4.2: "the receiver will spend at least two thirds of the memory the
    // sender spends" under multipath reordering — qualitatively, receiver
    // memory must be substantial (not near-zero as in single-path TCP).
    let cfg = MptcpConfig::default()
        .with_buffers(500_000)
        .with_mechanisms(Mechanisms::NONE);
    let mut sc = Scenario::new(
        TransportKind::Mptcp(cfg),
        ClientApp::Bulk {
            total: usize::MAX / 2,
            written: 0,
            close_when_done: false,
        },
        ServerApp::Sink,
        vec![
            Path::symmetric(LinkCfg::wifi()),
            Path::symmetric(LinkCfg::threeg()),
        ],
        SEED,
    );
    sc.run_for(Duration::from_secs(10));
    let t0 = sc.sim.now;
    sc.run_for(Duration::from_secs(10));
    let send_mem = sc.client().mem_sampler.mean_after(t0);
    let recv_mem = sc.server().mem_sampler.mean_after(t0);
    assert!(send_mem > 10_000.0, "sender holds data until DATA_ACK");
    assert!(
        recv_mem > 1_000.0,
        "multipath reordering must show up as receiver memory ({recv_mem:.0})"
    );
}
