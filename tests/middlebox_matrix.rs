//! The §3 design-space matrix as assertions: which transfer designs
//! survive which middleboxes. These are the qualitative claims the paper's
//! measurement study established.

use mptcp_harness::experiments::mbox::{run_cell, Design, MboxKind};

const SEED: u64 = 99;

fn outcome(mbox: MboxKind, design: Design) -> mptcp_harness::experiments::mbox::Outcome {
    run_cell(mbox, design, SEED).outcome
}

#[test]
fn clean_path_everyone_works() {
    for d in [Design::Mptcp, Design::Strawman, Design::Tcp] {
        assert!(
            outcome(MboxKind::None, d).completed(),
            "{d:?} on clean path"
        );
    }
}

#[test]
fn mptcp_survives_nat_but_strawman_starves() {
    // §3.2: per-subflow SYN exchanges create NAT state; tokens (not
    // five-tuples) identify the connection. The strawman sends no SYN on
    // the second path, and "NATs and Firewalls rarely pass data packets
    // that were not preceded by a SYN" — half its stream vanishes.
    assert!(outcome(MboxKind::Nat, Design::Mptcp).completed());
    assert!(outcome(MboxKind::Nat, Design::Tcp).completed());
    let straw = outcome(MboxKind::Nat, Design::Strawman);
    assert!(!straw.completed(), "strawman should starve: {straw:?}");
}

#[test]
fn mptcp_survives_sequence_rewriting() {
    // §3.3.4: relative DSS offsets are immune to ISN randomizers.
    use mptcp_harness::experiments::mbox::Outcome;
    let o = outcome(MboxKind::SeqRewrite, Design::Mptcp);
    assert_eq!(o, Outcome::Ok, "{o:?}");
}

#[test]
fn mptcp_survives_tso_splitting() {
    // §3.3.4: option copied to every split segment; length-delimited
    // mappings tolerate the duplicates.
    assert!(outcome(MboxKind::Split, Design::Mptcp).completed());
}

#[test]
fn mptcp_recovers_from_coalescing() {
    // §3.3.5: the merged segment keeps one mapping; unmapped bytes are
    // dropped at the receiver and retransmitted at the data level.
    assert!(outcome(MboxKind::Coalesce, Design::Mptcp).completed());
}

#[test]
fn option_stripping_on_syn_falls_back() {
    use mptcp_harness::experiments::mbox::Outcome;
    let o = outcome(MboxKind::StripSyn, Design::Mptcp);
    assert_eq!(o, Outcome::FellBack, "{o:?}");
}

#[test]
fn option_stripping_on_synack_falls_back() {
    // §3.1's asymmetric hazard: server thinks MPTCP, client doesn't.
    use mptcp_harness::experiments::mbox::Outcome;
    let o = outcome(MboxKind::StripSynAck, Design::Mptcp);
    assert_eq!(o, Outcome::FellBack, "{o:?}");
}

#[test]
fn syn_dropper_handled_by_plain_retry() {
    // §3.1: "follow the retransmitted SYN with one that omits the
    // MP_CAPABLE option" — connectivity is preserved at TCP level.
    use mptcp_harness::experiments::mbox::Outcome;
    let o = outcome(MboxKind::SynDrop, Design::Mptcp);
    assert_eq!(o, Outcome::FellBack, "{o:?}");
}

#[test]
fn payload_alg_detected_by_dss_checksum() {
    // §3.3.6: content-modifying middleboxes break the DSS checksum; the
    // transfer must continue (fallback or subflow reset), not corrupt.
    let cell = run_cell(MboxKind::PayloadRewrite, Design::Mptcp, SEED);
    assert!(cell.outcome.completed(), "{:?}", cell.outcome);
    // Plain TCP sails through (the ALG fixes the stream consistently).
    assert!(outcome(MboxKind::PayloadRewrite, Design::Tcp).completed());
}

#[test]
fn strawman_dies_behind_hole_droppers() {
    // §3.3: "5% of paths do not pass data after a hole" — striping a
    // single sequence space leaves a permanent hole on each path.
    let straw = outcome(MboxKind::HoleDrop, Design::Strawman);
    assert!(!straw.completed(), "strawman should stall: {straw:?}");
    // MPTCP's per-subflow spaces are hole-free per path.
    assert!(outcome(MboxKind::HoleDrop, Design::Mptcp).completed());
    assert!(outcome(MboxKind::HoleDrop, Design::Tcp).completed());
}

#[test]
fn mptcp_survives_proactive_acking_proxy_that_breaks_tcp() {
    // §3.3/§3.3.5: a proxy that acknowledges data in advance destroys
    // TCP's end-to-end reliability when those segments later die in a
    // downstream queue — the sender has already freed them. MPTCP keeps
    // every byte "in memory until we receive a DATA ACK", so it recovers
    // at the data level and completes where plain TCP stalls.
    assert!(outcome(MboxKind::ProxyAck, Design::Mptcp).completed());
    let tcp = outcome(MboxKind::ProxyAck, Design::Tcp);
    assert!(
        !tcp.completed(),
        "plain TCP should be broken by premature ACKs: {tcp:?}"
    );
}
